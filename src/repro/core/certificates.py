"""Inexpressibility certificates: Theorems 6.6 and 6.7, Lemma 6.3.

A certificate that a query Q is not expressible in ``L^k`` is a pair of
structures ``(A_k, B_k)`` with: A_k satisfies Q, B_k does not, and
Player II wins the existential k-pebble game on (A_k, B_k) (Theorem
4.10).  For the H1 query ("two node-disjoint paths"), the paper's
construction is:

* ``B_k = G_{phi_k}`` -- the SAT-reduction graph of the complete
  (unsatisfiable) formula on k variables, which therefore has no
  disjoint-path pair;
* ``A_k`` -- two plain disjoint paths whose lengths equal the standard
  path lengths in ``G_{phi_k}``, which trivially has the pair;
* Player II's strategy: answer a pebble at distance i along an A_k path
  with the i-th node of a *standard path* of ``G_{phi_k}``, resolving
  the per-switch brand / column / clause choices by playing the
  k-pebble formula game on ``phi_k`` on the side.

``B_k`` is far too large for the exact game solver, so the strategy is
the executable witness: :class:`TheoremSixSixStrategy` implements the
proof verbatim and is validated against adversarial Player I schedules
by the test suite (and cross-checked against exact solvers on the small
synthetic games elsewhere).

The H2 / H3 certificates (Theorem 6.7) arise by identifying endpoint
nodes on both sides; :func:`lift_certificate` is Lemma 6.3, extending a
certificate for a subpattern F1 to any superpattern F2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping

from repro.cnf.formulas import CnfFormula, Literal, complete_formula
from repro.fhw.reduction import (
    ClauseSlot,
    ColumnSlot,
    FixedSlot,
    ReductionInstance,
    SwitchSegmentSlot,
)
from repro.games.formula_game import PaperPhiKStrategy
from repro.games.simulate import GameState
from repro.graphs.digraph import DiGraph
from repro.structures.structure import Structure

Node = Hashable


@dataclass(frozen=True)
class InexpressibilityCertificate:
    """A (A_k, B_k, strategy) certificate against L^k definability.

    ``strategy_factory`` builds a fresh Player II strategy object (the
    strategies are stateful, one per game).  ``pattern_name`` names the
    obstruction (H1 / H2 / H3 / a lifted pattern's repr).
    """

    k: int
    pattern_name: str
    a: Structure
    b: Structure
    a_graph: DiGraph
    b_graph: DiGraph
    strategy_factory: Callable[[], object]

    def fresh_strategy(self):
        """A new stateful Player II strategy for one game run."""
        return self.strategy_factory()


class TheoremSixSixStrategy:
    """Player II's strategy from the proof of Theorem 6.6.

    Responds to Player I pebbling nodes of ``A_k`` (two disjoint paths,
    nodes ``("p", i)`` and ``("q", j)``) with nodes of ``B_k = G_{phi_k}``
    along standard paths, keeping a k-pebble formula game on ``phi_k``
    on the side:

    * Case 1/2 (c..a or b..d interior): challenge the switch's literal;
      true -> the p-branded node, false -> the q-branded node.
    * Case 3 (variable column): challenge the variable; pebble the
      corresponding node in the column of the *complement* literal.
    * Case 4 (clause segment): pick an undetermined literal of the
      clause, make it true, pebble its occurrence's p(e, f) node.

    Support counting (via :class:`PaperPhiKStrategy`'s assignment) makes
    values evaporate when no pebble sustains them; per-clause occurrence
    choices are reference-counted the same way.

    An optional ``node_map_a`` / ``node_map_b`` pair lets the same logic
    drive the quotient games of Theorem 6.7 (H2 / H3) and the lifted
    games of Lemma 6.3.
    """

    def __init__(self, instance: ReductionInstance, k: int) -> None:
        self.instance = instance
        self.k = k
        self.formula_player = PaperPhiKStrategy(instance.formula, k)
        self._p1_slots = instance.p1_slots()
        self._p2_slots = instance.p2_slots()
        # Per-pebble bookkeeping: which formula-game pebble (if any) and
        # which clause choice the placement charged.
        self._charges: dict[int, tuple[str, object]] = {}
        self._clause_choice: dict[int, tuple[int, int]] = {}  # clause -> (switch, support)

    # -- slot resolution under the current formula-game state ------------

    def _slot_for(self, element: Node):
        kind, index = element
        if kind == "p":
            return self._p1_slots[index]
        if kind == "q":
            return self._p2_slots[index]
        raise ValueError(f"{element!r} is not a node of A_k")

    def _respond_to_slot(self, pebble: int, slot) -> Node:
        instance = self.instance
        if isinstance(slot, FixedSlot):
            self._charges[pebble] = ("none", None)
            return slot.node
        if isinstance(slot, SwitchSegmentSlot):
            literal = instance.switches[slot.switch_index].literal
            value = self.formula_player.respond(("peb", pebble), literal)
            self._charges[pebble] = ("formula", ("peb", pebble))
            brand = "p" if value else "q"
            if slot.kind == "ca":
                return instance.resolve_ca(slot.switch_index, slot.offset, brand)
            return instance.resolve_bd(slot.switch_index, slot.offset, brand)
        if isinstance(slot, ColumnSlot):
            positive = Literal(slot.variable, True)
            value = self.formula_player.respond(("peb", pebble), positive)
            self._charges[pebble] = ("formula", ("peb", pebble))
            column_literal = Literal(slot.variable, positive=not value)
            return instance.resolve_column(column_literal, slot.rank, slot.offset)
        if isinstance(slot, ClauseSlot):
            switch_index = self._choose_clause_switch(slot.clause_index, pebble)
            return instance.resolve_clause(switch_index, slot.offset)
        raise TypeError(f"unknown slot {slot!r}")

    def _choose_clause_switch(self, clause_index: int, pebble: int) -> int:
        """The occurrence a clause segment routes through (ref-counted)."""
        instance = self.instance
        existing = self._clause_choice.get(clause_index)
        if existing is not None:
            switch_index, support = existing
            # Re-assert the chosen literal (adds one unit of support).
            literal = instance.switches[switch_index].literal
            self.formula_player.respond(("peb", pebble), literal)
            self._clause_choice[clause_index] = (switch_index, support + 1)
            self._charges[pebble] = ("clause", clause_index)
            return switch_index
        # Fresh choice: let the formula player answer the clause
        # challenge (it picks an undetermined literal and makes it true).
        chosen = self.formula_player.respond(("peb", pebble), clause_index)
        for switch_index in instance.clause_occurrences(clause_index):
            if instance.switches[switch_index].literal == chosen:
                self._clause_choice[clause_index] = (switch_index, 1)
                self._charges[pebble] = ("clause", clause_index)
                return switch_index
        raise AssertionError(
            f"clause {clause_index} has no occurrence of {chosen}"
        )

    # -- PlayerTwoStrategy protocol ---------------------------------------

    def respond(self, state: GameState, pebble: int, element: Node) -> Node:
        """Answer Player I's placement on A_k."""
        # Function-ness: a re-pebbled A-element keeps its image.
        for other in state.board_a:
            if other != pebble and state.board_a[other] == element:
                # Mirror the bookkeeping as a fresh charge on this pebble
                # so later removals stay balanced.
                return self._respond_existing(pebble, element, state.board_b[other])
        return self._respond_to_slot(pebble, self._slot_for(element))

    def _respond_existing(
        self, pebble: int, element: Node, image: Node
    ) -> Node:
        """Duplicate pebble: recharge the same choices and echo the image."""
        answered = self._respond_to_slot(pebble, self._slot_for(element))
        # With consistent bookkeeping the recomputed answer must agree.
        if answered != image:  # pragma: no cover - soundness guard
            raise AssertionError(
                "strategy produced conflicting images for a duplicated pebble"
            )
        return answered

    def notify_removal(self, state: GameState, pebble: int) -> None:
        """Release whatever the removed pebble supported."""
        kind, payload = self._charges.pop(pebble, ("none", None))
        if kind == "none":
            return
        if kind == "formula":
            self.formula_player.release(payload)
            return
        # kind == "clause": drop one unit of clause-choice support, and
        # the literal support recorded in the formula player.
        clause_index = payload
        self.formula_player.release(("peb", pebble))
        switch_index, support = self._clause_choice[clause_index]
        if support == 1:
            del self._clause_choice[clause_index]
        else:
            self._clause_choice[clause_index] = (switch_index, support - 1)


@dataclass(frozen=True)
class CertificateReport:
    """Outcome of exercising a certificate under adversarial play."""

    survived: int
    total: int
    rounds: int
    failure_seeds: tuple[int, ...]

    @property
    def all_survived(self) -> bool:
        """Whether Player II survived every schedule."""
        return self.survived == self.total


def verify_certificate(
    certificate: "InexpressibilityCertificate",
    seeds: int = 10,
    rounds: int = 200,
) -> CertificateReport:
    """Exercise a certificate's Player II strategy against random
    adversarial schedules; the library-level routine behind the CLI's
    ``repro certificate`` and the benchmarks."""
    from repro.games.simulate import RandomPlayerOne, run_existential_game

    failures = []
    for seed in range(seeds):
        transcript = run_existential_game(
            certificate.a,
            certificate.b,
            certificate.k,
            RandomPlayerOne(certificate.a, seed=seed),
            certificate.fresh_strategy(),
            rounds=rounds,
        )
        if not transcript.player_two_survived:
            failures.append(seed)
    return CertificateReport(
        survived=seeds - len(failures),
        total=seeds,
        rounds=rounds,
        failure_seeds=tuple(failures),
    )


# ---------------------------------------------------------------------------
# Certificate constructions
# ---------------------------------------------------------------------------


def _a_k_graph(instance: ReductionInstance) -> DiGraph:
    """A_k: two disjoint simple paths with the standard path lengths."""
    length_p1 = len(instance.p1_slots())
    length_p2 = len(instance.p2_slots())
    first = [("p", i) for i in range(length_p1)]
    second = [("q", i) for i in range(length_p2)]
    edges = list(zip(first, first[1:])) + list(zip(second, second[1:]))
    return DiGraph(
        first + second,
        edges,
        distinguished={
            "s1": first[0],
            "s2": first[-1],
            "s3": second[0],
            "s4": second[-1],
        },
    )


def theorem_66_certificate(k: int) -> InexpressibilityCertificate:
    """The Theorem 6.6 certificate against L^k for the H1 query.

    ``A_k`` has node-disjoint s1->s2 / s3->s4 paths, ``B_k = G_{phi_k}``
    has none (phi_k being unsatisfiable), and
    :class:`TheoremSixSixStrategy` keeps Player II alive in the
    existential k-pebble game.
    """
    if k < 1:
        raise ValueError("k must be positive")
    instance = ReductionInstance(complete_formula(k))
    a_graph = _a_k_graph(instance)
    b_graph = instance.graph
    return InexpressibilityCertificate(
        k=k,
        pattern_name="H1",
        a=a_graph.to_structure(),
        b=b_graph.to_structure(),
        a_graph=a_graph,
        b_graph=b_graph,
        strategy_factory=lambda: TheoremSixSixStrategy(instance, k),
    )


def quotient_graph(
    graph: DiGraph, merge: Mapping[Node, Node], distinguished: Mapping[str, Node]
) -> DiGraph:
    """The graph with nodes identified per ``merge`` (old -> new)."""

    def image(node: Node) -> Node:
        return merge.get(node, node)

    nodes = {image(v) for v in graph.nodes}
    edges = {(image(u), image(v)) for u, v in graph.edges}
    return DiGraph(nodes, edges, distinguished)


class _QuotientStrategy:
    """Drive a base strategy through node identifications on both sides."""

    def __init__(
        self,
        base,
        a_preimage: Mapping[Node, Node],
        b_merge: Mapping[Node, Node],
    ) -> None:
        self._base = base
        self._a_preimage = dict(a_preimage)
        self._b_merge = dict(b_merge)

    def respond(self, state: GameState, pebble: int, element: Node) -> Node:
        original = self._a_preimage.get(element, element)
        answer = self._base.respond(state, pebble, original)
        return self._b_merge.get(answer, answer)

    def notify_removal(self, state: GameState, pebble: int) -> None:
        self._base.notify_removal(state, pebble)


def h2_certificate(k: int) -> InexpressibilityCertificate:
    """Theorem 6.7, pattern H2 (path of length two).

    Identify the end of A_k's first path with the start of its second
    (w2 ~ w3) and, on B_k, s2 ~ s3; the distinguished nodes become the
    three nodes of H2.  Player II plays the Theorem 6.6 strategy through
    the identification.
    """
    base = theorem_66_certificate(k)
    instance: ReductionInstance = base.strategy_factory().instance
    a_end = base.a_graph.distinguished["s2"]
    a_start = base.a_graph.distinguished["s3"]
    a_merge = {a_start: a_end}
    a_graph = quotient_graph(
        base.a_graph,
        a_merge,
        {
            "s1": base.a_graph.distinguished["s1"],
            "s2": a_end,
            "s3": base.a_graph.distinguished["s4"],
        },
    )
    b2 = base.b_graph.distinguished["s2"]
    b3 = base.b_graph.distinguished["s3"]
    b_merge = {b3: b2}
    b_graph = quotient_graph(
        base.b_graph,
        b_merge,
        {
            "s1": base.b_graph.distinguished["s1"],
            "s2": b2,
            "s3": base.b_graph.distinguished["s4"],
        },
    )

    def factory():
        return _QuotientStrategy(
            TheoremSixSixStrategy(instance, k),
            a_preimage={a_end: a_start},
            b_merge=b_merge,
        )

    return InexpressibilityCertificate(
        k=k,
        pattern_name="H2",
        a=a_graph.to_structure(),
        b=b_graph.to_structure(),
        a_graph=a_graph,
        b_graph=b_graph,
        strategy_factory=factory,
    )


def h3_certificate(k: int) -> InexpressibilityCertificate:
    """Theorem 6.7, pattern H3 (two-cycle).

    Identify w1 ~ w4 and w2 ~ w3 in A_k (making the two paths a cycle
    through two distinguished nodes) and s1 ~ s4, s2 ~ s3 in B_k.
    """
    base = theorem_66_certificate(k)
    instance: ReductionInstance = base.strategy_factory().instance
    d_a = base.a_graph.distinguished
    a_merge = {d_a["s4"]: d_a["s1"], d_a["s3"]: d_a["s2"]}
    a_graph = quotient_graph(
        base.a_graph, a_merge, {"s1": d_a["s1"], "s2": d_a["s2"]}
    )
    d_b = base.b_graph.distinguished
    b_merge = {d_b["s4"]: d_b["s1"], d_b["s3"]: d_b["s2"]}
    b_graph = quotient_graph(
        base.b_graph, b_merge, {"s1": d_b["s1"], "s2": d_b["s2"]}
    )

    def factory():
        return _QuotientStrategy(
            TheoremSixSixStrategy(instance, k),
            # Quotient A-nodes whose base answer we reuse: the merged
            # endpoints answer via their "p"-path representatives.
            a_preimage={d_a["s1"]: d_a["s1"], d_a["s2"]: d_a["s2"]},
            b_merge=b_merge,
        )

    return InexpressibilityCertificate(
        k=k,
        pattern_name="H3",
        a=a_graph.to_structure(),
        b=b_graph.to_structure(),
        a_graph=a_graph,
        b_graph=b_graph,
        strategy_factory=factory,
    )


# ---------------------------------------------------------------------------
# Theorem 6.7 in full generality: any pattern outside class C
# ---------------------------------------------------------------------------


def certificate_for_pattern(
    pattern: DiGraph, k: int
) -> InexpressibilityCertificate:
    """An inexpressibility certificate for any pattern H outside C.

    Implements the proof of Theorem 6.7: locate an H1 / H2 / H3
    obstruction inside H (Section 6.2's characterisation of the
    complement of C), take the corresponding base certificate, and lift
    it to H via Lemma 6.3.  When H *is* one of the three obstructions
    the base certificate is returned directly.

    Patterns whose only obstruction involves a self-loop (a loop plus a
    node-disjoint edge) fall outside the paper's three base
    constructions and are rejected.
    """
    from repro.fhw.pattern_class import complement_witness, pattern_h1, pattern_h2, pattern_h3

    stripped = pattern.without_isolated_nodes()
    witness = complement_witness(stripped)
    if witness is None:
        raise ValueError(
            "pattern is in class C: Theorem 6.1 gives a Datalog(!=) "
            "program, so no inexpressibility certificate exists"
        )
    kind, nodes = witness
    if kind == "H1" and (nodes[0] == nodes[1] or nodes[2] == nodes[3]):
        raise NotImplementedError(
            "the obstruction is a self-loop plus a disjoint edge; the "
            "paper's base constructions cover H1/H2/H3 only"
        )

    if kind == "H1":
        base = theorem_66_certificate(k)
        sub_names = ("s1", "s2", "s3", "s4")
        sub_pattern = DiGraph(
            edges=[(nodes[0], nodes[1]), (nodes[2], nodes[3])]
        )
        witness_order = nodes
    elif kind == "H2":
        base = h2_certificate(k)
        sub_names = ("s1", "s2", "s3")
        sub_pattern = DiGraph(
            edges=[(nodes[0], nodes[1]), (nodes[1], nodes[2])]
        )
        witness_order = nodes
    else:  # H3
        base = h3_certificate(k)
        sub_names = ("s1", "s2")
        sub_pattern = DiGraph(
            edges=[(nodes[0], nodes[1]), (nodes[1], nodes[0])]
        )
        witness_order = nodes

    sub_assignment_a = {
        node: base.a_graph.distinguished[name]
        for node, name in zip(witness_order, sub_names)
    }
    sub_assignment_b = {
        node: base.b_graph.distinguished[name]
        for node, name in zip(witness_order, sub_names)
    }
    if stripped.edges == sub_pattern.edges:
        # H is (a relabelling of) the obstruction itself; re-expose the
        # base certificate under the uniform h<i>-naming convention so
        # callers can always address distinguished nodes by H's nodes.
        ordered = sorted(stripped.nodes, key=repr)
        a_graph = base.a_graph.with_distinguished({
            f"h{i}": sub_assignment_a[node] for i, node in enumerate(ordered)
        })
        b_graph = base.b_graph.with_distinguished({
            f"h{i}": sub_assignment_b[node] for i, node in enumerate(ordered)
        })
        return InexpressibilityCertificate(
            k=k,
            pattern_name=base.pattern_name,
            a=a_graph.to_structure(),
            b=b_graph.to_structure(),
            a_graph=a_graph,
            b_graph=b_graph,
            strategy_factory=base.strategy_factory,
        )
    return lift_certificate(
        base, sub_pattern, stripped, sub_assignment_a, sub_assignment_b
    )


# ---------------------------------------------------------------------------
# Lemma 6.3: lifting certificates to superpatterns
# ---------------------------------------------------------------------------


def lift_certificate(
    certificate: InexpressibilityCertificate,
    sub_pattern: DiGraph,
    super_pattern: DiGraph,
    sub_assignment_a: Mapping[Node, Node],
    sub_assignment_b: Mapping[Node, Node],
) -> InexpressibilityCertificate:
    """Lemma 6.3: extend a certificate for F1 to a superpattern F2.

    ``sub_assignment_a`` / ``sub_assignment_b`` map the nodes of
    ``sub_pattern`` (F1) to the distinguished nodes of the certificate's
    A / B sides.  A fresh copy of F2 - F1 is attached to both sides,
    identifying shared F1-nodes with the existing distinguished nodes;
    Player II answers new-copy nodes by the corresponding new-copy node
    and defers to the base strategy elsewhere.
    """
    extra_edges = [
        edge for edge in sorted(super_pattern.edges, key=repr)
        if edge not in sub_pattern.edges
    ]
    if not extra_edges:
        raise ValueError("super_pattern adds no edges over sub_pattern")

    def attach(
        graph: DiGraph, anchor: Mapping[Node, Node], tag: str
    ) -> tuple[DiGraph, dict[Node, Node], dict[str, Node]]:
        """Glue F2 - F1 onto a side; return (graph, copy map, names)."""
        copy: dict[Node, Node] = {}

        def image(node: Node) -> Node:
            if node in anchor:
                return anchor[node]
            if node not in copy:
                copy[node] = (tag, node)
            return copy[node]

        new_edges = {(image(u), image(v)) for u, v in extra_edges}
        extended = graph.add_edges(new_edges)
        names = {
            f"h{i}": image(node)
            for i, node in enumerate(sorted(super_pattern.nodes, key=repr))
        }
        return extended.with_distinguished(names), copy, names

    a_graph, a_copy, __ = attach(certificate.a_graph, sub_assignment_a, "xa")
    b_graph, b_copy, __ = attach(certificate.b_graph, sub_assignment_b, "xb")

    # Correspondence for the new nodes: ("xa", v) answers ("xb", v); old
    # distinguished nodes answer via the base strategy's constants, and
    # every other node defers to the base strategy.
    new_answers = {
        a_copy[node]: b_copy[node] for node in a_copy
    }
    distinguished_answers = {
        sub_assignment_a[node]: sub_assignment_b[node]
        for node in sub_assignment_a
    }

    def factory():
        base = certificate.fresh_strategy()

        class _Lifted:
            def respond(self, state: GameState, pebble: int, element: Node):
                if element in new_answers:
                    return new_answers[element]
                answer = base.respond(state, pebble, element)
                return answer

            def notify_removal(self, state: GameState, pebble: int) -> None:
                base.notify_removal(state, pebble)

        return _Lifted()

    return InexpressibilityCertificate(
        k=certificate.k,
        pattern_name=f"lift({certificate.pattern_name})",
        a=a_graph.to_structure(),
        b=b_graph.to_structure(),
        a_graph=a_graph,
        b_graph=b_graph,
        strategy_factory=factory,
    )
