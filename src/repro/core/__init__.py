"""The paper's results as an API.

* :mod:`repro.core.certificates` -- the Theorem 6.6 / 6.7 structures
  ``(A_k, B_k)`` for the patterns H1, H2, H3, together with the proof's
  Player II strategy as an executable object, and the Lemma 6.3 lifting
  to arbitrary patterns outside class C.
* :mod:`repro.core.separations` -- the Corollary 6.8 doubling reduction
  from two-disjoint-paths to even-simple-path, with certificate
  transport.
* :mod:`repro.core.dichotomy` -- the full classification of a pattern
  graph H: class C membership, FHW complexity, Datalog(!=)
  expressibility, and the witnessing program or obstruction.
* :mod:`repro.core.expressibility` -- executable monotonicity and
  preservation properties separating Datalog, Datalog(!=) and beyond.
"""

from repro.core.api import cross_check, decide_homeomorphism
from repro.core.certificates import (
    CertificateReport,
    certificate_for_pattern,
    InexpressibilityCertificate,
    TheoremSixSixStrategy,
    h2_certificate,
    h3_certificate,
    lift_certificate,
    theorem_66_certificate,
    verify_certificate,
)
from repro.core.dichotomy import PatternClassification, classify_query
from repro.core.expressibility import (
    identify_elements,
    is_monotone_on,
    is_strongly_monotone_on,
    random_extension,
    random_identification,
)
from repro.core.separations import (
    double_graph,
    even_simple_path_certificate,
)

__all__ = [
    "decide_homeomorphism",
    "cross_check",
    "InexpressibilityCertificate",
    "TheoremSixSixStrategy",
    "CertificateReport",
    "verify_certificate",
    "certificate_for_pattern",
    "theorem_66_certificate",
    "h2_certificate",
    "h3_certificate",
    "lift_certificate",
    "PatternClassification",
    "classify_query",
    "double_graph",
    "even_simple_path_certificate",
    "identify_elements",
    "is_monotone_on",
    "is_strongly_monotone_on",
    "random_extension",
    "random_identification",
]
