"""Executable preservation properties (Section 2's monotonicity facts).

* Datalog programs compute *strongly monotone* queries: preserved under
  adding tuples/elements **and** under identifying universe elements;
* Datalog(!=) programs compute *monotone* queries: preserved under
  adding tuples and elements, but not necessarily under identification
  (Example 2.1's w-avoiding path query is the witness).

These helpers generate random extensions / identifications and check
preservation of the computed goal relation -- the property-based tests
drive them with hypothesis, and the test suite exhibits the paper's
separating examples.
"""

from __future__ import annotations

import random
from typing import Hashable

from repro.datalog.ast import Program
from repro.datalog.evaluation import evaluate
from repro.structures.structure import Structure

Element = Hashable


def random_extension(
    structure: Structure, seed: int, extra_elements: int = 2, extra_tuples: int = 3
) -> Structure:
    """A random superstructure: new elements and new relation tuples."""
    rng = random.Random(seed)
    universe = set(structure.universe)
    fresh = [("new", seed, i) for i in range(extra_elements)]
    universe.update(fresh)
    pool = sorted(universe, key=repr)
    relations = {
        name: set(structure.relation(name))
        for name in structure.vocabulary.relation_names
    }
    names = sorted(relations)
    for __ in range(extra_tuples):
        name = rng.choice(names)
        arity = structure.vocabulary.arity(name)
        relations[name].add(tuple(rng.choice(pool) for __ in range(arity)))
    return Structure(
        structure.vocabulary, universe, relations, dict(structure.constants)
    )


def identify_elements(
    structure: Structure, victim: Element, survivor: Element
) -> Structure:
    """The quotient structure identifying ``victim`` with ``survivor``.

    The non-injective collapse of the paper's strong-monotonicity
    discussion; constants interpreted by the victim move to the
    survivor.
    """
    if victim not in structure.universe or survivor not in structure.universe:
        raise ValueError("both elements must belong to the universe")

    def image(x: Element) -> Element:
        return survivor if x == victim else x

    relations = {
        name: {tuple(image(x) for x in t) for t in structure.relation(name)}
        for name in structure.vocabulary.relation_names
    }
    constants = {
        name: image(value) for name, value in structure.constants.items()
    }
    universe = {image(x) for x in structure.universe}
    return Structure(structure.vocabulary, universe, relations, constants)


def random_identification(
    structure: Structure, seed: int
) -> tuple[Structure, Element, Element] | None:
    """A random single identification (None if fewer than 2 elements).

    Elements interpreting constants are never collapsed (distinguished
    nodes must stay pairwise distinct).
    """
    rng = random.Random(seed)
    protected = set(structure.constants.values())
    candidates = sorted(
        (x for x in structure.universe if x not in protected), key=repr
    )
    if len(candidates) < 2:
        return None
    victim, survivor = rng.sample(candidates, 2)
    return identify_elements(structure, victim, survivor), victim, survivor


def is_monotone_on(
    program: Program, smaller: Structure, larger: Structure
) -> bool:
    """Whether the goal relation on ``smaller`` survives in ``larger``.

    ``larger`` must extend ``smaller`` (superset universe and
    relations); the check is goal-relation containment.
    """
    before = evaluate(program, smaller).goal_relation
    after = evaluate(program, larger).goal_relation
    return before <= after


def is_strongly_monotone_on(
    program: Program,
    structure: Structure,
    victim: Element,
    survivor: Element,
) -> bool:
    """Preservation under identifying ``victim`` with ``survivor``.

    Every goal tuple of the original must map (under the collapse) to a
    goal tuple of the quotient -- the defining property of strongly
    monotone queries, which all pure Datalog programs have and
    Datalog(!=) programs may lack.
    """
    quotient = identify_elements(structure, victim, survivor)

    def image(x: Element) -> Element:
        return survivor if x == victim else x

    before = evaluate(program, structure).goal_relation
    after = evaluate(program, quotient).goal_relation
    return all(tuple(image(x) for x in t) in after for t in before)
