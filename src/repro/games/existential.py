"""The existential k-pebble game and its exact solver.

Definition 4.3: Players I and II each hold k pebbles; I plays on A, II
answers on B; I wins a round when the pebbled correspondence (together
with the constants) stops being a partial one-to-one homomorphism.

Definition 4.7 recasts Player II's winning strategies as nonempty
families H of partial one-to-one homomorphisms closed under subfunctions
and with the forth property up to k.  The solver computes the *largest*
candidate family by greatest-fixpoint elimination over all positions
(partial maps with at most k non-constant pairs):

* a position violating the forth property is eliminated;
* a position one of whose subfunctions was eliminated is eliminated
  (closure under subfunctions).

Player II wins iff the empty position survives; the surviving family is
then a bona-fide winning-strategy family and is returned.  Elimination
rounds also assign each dead position a *rank*, from which a concrete
Player I winning line is extracted.

Complexity: the number of positions is at most ``(|A| * |B| + 1)^k``
-- polynomial for fixed k, which is Proposition 5.3.

Setting ``injective=False`` plays the homomorphism variant of Remark
4.12(1), which characterises inequality-free ``L^k`` and hence Datalog.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping

from repro.structures.homomorphism import (
    is_partial_homomorphism,
    is_partial_one_to_one_homomorphism,
)
from repro.structures.structure import Structure

Element = Hashable
Position = frozenset  # of (a, b) pairs; constants are implicit


@dataclass(frozen=True)
class ExistentialGameResult:
    """Outcome of solving an existential k-pebble game on (A, B).

    Attributes
    ----------
    winner:
        ``"I"`` or ``"II"``.
    k:
        Number of pebbles.
    family:
        When II wins: a winning-strategy family (Definition 4.7),
        positions as frozensets of (a, b) pairs, constants left implicit.
        When I wins: the (possibly empty) surviving family, which then
        does not contain the empty position.
    ranks:
        For every eliminated position, the elimination round at which it
        died; used to extract Player I's winning line.
    injective:
        True for the standard (one-to-one) game, False for the Datalog
        (homomorphism) variant.
    """

    winner: str
    k: int
    family: frozenset[Position]
    ranks: Mapping[Position, int]
    injective: bool

    @property
    def player_two_wins(self) -> bool:
        """Convenience flag."""
        return self.winner == "II"


def _is_valid_position(
    position: Iterable[tuple], a: Structure, b: Structure, injective: bool
) -> bool:
    mapping: dict = {}
    for source, target in position:
        if source in mapping and mapping[source] != target:
            return False
        mapping[source] = target
    if injective:
        return is_partial_one_to_one_homomorphism(mapping, a, b)
    return is_partial_homomorphism(mapping, a, b)


def _all_positions(
    a: Structure, b: Structure, k: int, injective: bool
) -> Iterator[Position]:
    """Every valid position with at most k non-constant pairs.

    Pebbles carrying the same pair are collapsed (a position is the set
    of pairs), so positions are subsets of A x B of size <= k.  Two
    prunings keep the enumeration close to the valid set: only pairs
    whose singleton is itself valid participate (subfunctions of valid
    positions are valid), and function-ness/injectivity conflicts are
    skipped structurally before the full homomorphism check.
    """
    pairs = [
        (x, y)
        for x in sorted(a.universe, key=repr)
        for y in sorted(b.universe, key=repr)
        if _is_valid_position([(x, y)], a, b, injective)
    ]
    if _is_valid_position([], a, b, injective):
        yield frozenset()

    chosen: list[tuple] = []

    def extend(start: int) -> Iterator[Position]:
        for index in range(start, len(pairs)):
            x, y = pairs[index]
            if any(x == cx for cx, __ in chosen):
                continue  # two images for one element: not a function
            if injective and any(y == cy for __, cy in chosen):
                continue  # two sources for one image: not injective
            chosen.append((x, y))
            if _is_valid_position(chosen, a, b, injective):
                yield frozenset(chosen)
                if len(chosen) < k:
                    yield from extend(index + 1)
            chosen.pop()

    yield from extend(0)


def solve_existential_game(
    a: Structure,
    b: Structure,
    k: int,
    injective: bool = True,
) -> ExistentialGameResult:
    """Decide who wins the existential k-pebble game on (A, B).

    Exact and polynomial for fixed k (Proposition 5.3); exponential in k.
    """
    if a.vocabulary != b.vocabulary:
        raise ValueError("the two structures must share a vocabulary")
    if k < 1:
        raise ValueError("at least one pebble is required")

    alive: set[Position] = set(_all_positions(a, b, k, injective))
    ranks: dict[Position, int] = {}
    a_elements = sorted(a.universe, key=repr)
    b_elements = sorted(b.universe, key=repr)

    def forth_holds(position: Position) -> bool:
        """Forth property: every placement challenge has a live answer."""
        if len(position) >= k:
            return True
        sources = {pair[0] for pair in position}
        for x in a_elements:
            if x in sources:
                continue  # re-pebbling a pebbled element is answerable
            answered = False
            for y in b_elements:
                candidate = position | {(x, y)}
                if candidate in alive:
                    answered = True
                    break
            if not answered:
                return False
        return True

    round_number = 0
    while True:
        round_number += 1
        doomed = set()
        for position in alive:
            if not forth_holds(position):
                doomed.add(position)
                continue
            # Closure under subfunctions: a position whose sub-position
            # died is dead too (Player I just lifts pebbles).
            for pair in position:
                if (position - {pair}) not in alive and len(position) > 0:
                    doomed.add(position)
                    break
        if not doomed:
            break
        for position in doomed:
            alive.discard(position)
            ranks[position] = round_number

    empty: Position = frozenset()
    # The empty position is valid iff the constant pairing itself is a
    # partial (one-to-one) homomorphism; it may be missing from `alive`
    # from the start.
    if empty in alive:
        winner = "II"
    else:
        winner = "I"
        ranks.setdefault(empty, 0)
    return ExistentialGameResult(
        winner=winner,
        k=k,
        family=frozenset(alive),
        ranks=dict(ranks),
        injective=injective,
    )


def winning_family(
    a: Structure, b: Structure, k: int, injective: bool = True
) -> frozenset[Position] | None:
    """A winning-strategy family for Player II, or ``None`` if I wins."""
    result = solve_existential_game(a, b, k, injective)
    if result.player_two_wins:
        return result.family
    return None


def preceq_k(
    a: Structure,
    b: Structure,
    k: int,
    injective: bool = True,
) -> bool:
    """The relation ``A <=^k B`` of Definition 4.1 / Theorem 4.8.

    ``A <=^k B`` iff every L^k sentence true in A holds in B, iff Player
    II wins the existential k-pebble game on (A, B).  With
    ``injective=False`` this instead characterises the inequality-free
    fragment (Remark 4.12), the one matching pure Datalog.

    To compare expansions ``(A, a_1..a_m) <=^k (B, b_1..b_m)`` add the
    tuples as constants via :meth:`Structure.with_constants` first.
    """
    return solve_existential_game(a, b, k, injective).player_two_wins


def player_one_winning_move(
    result: ExistentialGameResult,
    position: Position,
    a: Structure,
    b: Structure,
) -> tuple[str, Element | None]:
    """Player I's move keeping a dead position dead.

    Returns ``("place", x)`` when pebbling ``x`` of A defeats every
    response, or ``("remove", pair)`` when lifting a pebble exposes a
    dead sub-position.  Only meaningful when ``position`` is eliminated
    (not in ``result.family``).
    """
    if position in result.family:
        raise ValueError("Player I has no winning move from a live position")
    rank = result.ranks.get(position)
    if rank is None:
        # The position is not even a valid partial homomorphism: Player I
        # has already won the game.
        raise ValueError("position is already lost for Player II")

    def strictly_worse(candidate: Position) -> bool:
        """Invalid, or dead with a strictly smaller elimination rank.

        Strict rank decrease guarantees Player I's line terminates
        within ``rank`` moves no matter how Player II answers.
        """
        if candidate in result.family:
            return False
        candidate_rank = result.ranks.get(candidate)
        return candidate_rank is None or candidate_rank < rank

    # Removal exposing an earlier-eliminated sub-position.
    for pair in sorted(position, key=repr):
        if strictly_worse(position - {pair}):
            return ("remove", pair)
    # Placement whose every response is strictly worse.
    sources = {pair[0] for pair in position}
    if len(position) < result.k:
        for x in sorted(a.universe, key=repr):
            if x in sources:
                continue
            responses = [
                position | {(x, y)} for y in sorted(b.universe, key=repr)
            ]
            if all(strictly_worse(candidate) for candidate in responses):
                return ("place", x)
    raise AssertionError(
        "eliminated position with no winning move; solver invariant broken"
    )
