"""The k-pebble game on Boolean formulas (Definition 6.5).

Player I pebbles literals or clauses of a CNF formula; Player II must
assign a truth value to a pebbled literal, or select a literal of a
pebbled clause and make it true.  Player II loses as soon as some literal
is forced both true and false; he wins by playing forever.

Facts reproduced (Section 6.2) and verified in the test suite:

* if ``phi`` is satisfiable, Player II wins the k-pebble game for all k;
* if ``phi`` is unsatisfiable with k variables, Player I wins the
  (k+1)-pebble game;
* Player I wins the 2-pebble game on ``x1 & .. & xk & (~x1 | .. | ~xk)``;
* Player II wins the k-pebble game on the complete formula ``phi_k``
  (but loses the (k+1)-pebble game) -- the engine of Theorem 6.6.

The exact solver is a safety greatest fixpoint over game states; states
are multisets of at most k (challenge, response) pairs.  Following the
standard abstraction, Player I may remove or place a pebble at any time
(giving him at least the power of the paper's phased schedule).

:class:`PaperPhiKStrategy` implements Player II's explicit strategy for
``phi_k`` from the proof of Theorem 6.6 and is reused verbatim by the
Theorem 6.6 certificate.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Iterator, Union

from repro.cnf.assignments import ExtendedAssignment, InconsistentAssignment
from repro.cnf.formulas import CnfFormula, Literal

# A challenge is a literal, or a clause index; a response is the truth
# value (for literals) or the selected literal made true (for clauses).
LiteralChallenge = Literal
ClauseChallenge = int
Challenge = Union[Literal, int]
Pebble = tuple  # (challenge, response)
State = tuple  # sorted tuple of pebbles (a multiset)


@dataclass(frozen=True)
class FormulaGameResult:
    """Outcome of solving the k-pebble formula game.

    ``alive`` holds the consistent states from which Player II survives
    every schedule; Player II wins the game iff the empty state is
    alive.  ``ranks`` maps each eliminated state to the elimination
    round at which it died (used to extract Player I's winning line).
    """

    player_two_wins: bool
    k: int
    alive: frozenset
    ranks: dict = None


def _responses(formula: CnfFormula, challenge: Challenge) -> list:
    if isinstance(challenge, Literal):
        return [True, False]
    clause = formula.clauses[challenge]
    return sorted(set(clause.literals))


def _forced_pairs(pebble: Pebble) -> list[tuple[str, bool]]:
    """(variable, value) facts a pebble imposes."""
    challenge, response = pebble
    if isinstance(challenge, Literal):
        value = response if challenge.positive else not response
        return [(challenge.variable, value)]
    literal = response
    return [(literal.variable, literal.positive)]


def _consistent(state: State) -> bool:
    values: dict[str, bool] = {}
    for pebble in state:
        for variable, value in _forced_pairs(pebble):
            if values.setdefault(variable, value) != value:
                return False
    return True


def _challenges(formula: CnfFormula) -> list[Challenge]:
    literal_challenges: list[Challenge] = list(formula.literals)
    clause_challenges: list[Challenge] = list(range(len(formula.clauses)))
    return literal_challenges + clause_challenges


def _sorted_state(pebbles: Iterator[Pebble] | list[Pebble]) -> State:
    return tuple(sorted(pebbles, key=repr))


def solve_formula_game(formula: CnfFormula, k: int) -> FormulaGameResult:
    """Decide who wins the k-pebble game on ``formula`` (exact)."""
    if k < 1:
        raise ValueError("at least one pebble is required")
    challenges = _challenges(formula)
    pebble_pool = [
        (challenge, response)
        for challenge in challenges
        for response in _responses(formula, challenge)
    ]
    states: set[State] = set()
    for size in range(k + 1):
        for combo in itertools.combinations_with_replacement(
            sorted(pebble_pool, key=repr), size
        ):
            state = _sorted_state(list(combo))
            if _consistent(state):
                states.add(state)

    alive = set(states)
    ranks: dict[State, int] = {}
    round_number = 0
    changed = True
    while changed:
        round_number += 1
        changed = False
        doomed = [
            state
            for state in alive
            if _state_doomed(state, alive, challenges, formula, k)
        ]
        for state in doomed:
            alive.discard(state)
            ranks[state] = round_number
            changed = True
    return FormulaGameResult(
        player_two_wins=() in alive,
        k=k,
        alive=frozenset(alive),
        ranks=ranks,
    )


def _state_doomed(
    state: State,
    alive: set[State],
    challenges: list[Challenge],
    formula: CnfFormula,
    k: int,
) -> bool:
    # Removal challenges: Player I picks any pebble to lift.
    for index in range(len(state)):
        reduced = _sorted_state(state[:index] + state[index + 1:])
        if reduced not in alive:
            return True
    # Placement challenges.
    if len(state) < k:
        for challenge in challenges:
            answered = False
            for response in _responses(formula, challenge):
                candidate = _sorted_state(list(state) + [(challenge, response)])
                if candidate in alive:
                    answered = True
                    break
            if not answered:
                return True
    return False


# ---------------------------------------------------------------------------
# Interactive play
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FormulaGameTranscript:
    """Record of a simulated formula game."""

    rounds_played: int
    player_two_survived: bool
    failure_round: int | None
    history: tuple


class PaperPhiKStrategy:
    """Player II's strategy for the complete formula phi_k (Section 6.2).

    * literal challenge: keep the current value if determined, otherwise
      assign **true**;
    * clause challenge: with at most k-1 other pebbles placed, at most
      k-1 variable pairs are determined, so the (k-literal, all-distinct)
      clause contains an undetermined literal -- select one and make it
      true;
    * values are reference-counted and evaporate when no pebble supports
      them, exactly as the proof prescribes.

    The strategy is sound for *any* formula whose clauses each contain k
    distinct variables (phi_k being the canonical case); on others it
    raises :class:`InconsistentAssignment` when cornered.
    """

    def __init__(self, formula: CnfFormula, k: int) -> None:
        self.formula = formula
        self.k = k
        self._assignment = ExtendedAssignment()
        self._pebbles: dict[int, tuple[Challenge, Literal, bool]] = {}

    def respond(self, pebble_id: int, challenge: Challenge):
        """Answer a challenge; records support for the chosen value.

        Returns the response (a bool for literal challenges, the selected
        literal for clause challenges).
        """
        if pebble_id in self._pebbles:
            raise ValueError(f"pebble {pebble_id} is already placed")
        if isinstance(challenge, Literal):
            current = self._assignment.value(challenge)
            value = True if current is None else current
            self._assignment.assign(challenge, value)
            self._pebbles[pebble_id] = (challenge, challenge, value)
            return value
        clause = self.formula.clauses[challenge]
        for literal in sorted(set(clause.literals)):
            if not self._assignment.is_determined(literal):
                self._assignment.assign(literal, True)
                self._pebbles[pebble_id] = (challenge, literal, True)
                return literal
        # Fall back to any already-true literal; if none exists Player II
        # is genuinely beaten (cannot happen on phi_k with < k pebbles).
        for literal in sorted(set(clause.literals)):
            if self._assignment.value(literal):
                self._assignment.assign(literal, True)
                self._pebbles[pebble_id] = (challenge, literal, True)
                return literal
        raise InconsistentAssignment(
            f"every literal of clause {clause} is already false"
        )

    def release(self, pebble_id: int) -> None:
        """Player I removed a pebble: drop one unit of support."""
        challenge, literal, value = self._pebbles.pop(pebble_id)
        if isinstance(challenge, Literal):
            self._assignment.release(literal)
        else:
            self._assignment.release(literal)

    def current_assignment(self) -> dict[str, bool]:
        """The currently-supported partial assignment (copy)."""
        return self._assignment.as_dict()

    def value_of(self, literal: Literal) -> bool | None:
        """Current truth value of a literal, if determined."""
        return self._assignment.value(literal)


class RandomFormulaPlayerOne:
    """A seeded random Player I for the formula game."""

    def __init__(self, formula: CnfFormula, k: int, seed: int) -> None:
        self._challenges = _challenges(formula)
        self._k = k
        self._rng = random.Random(seed)

    def next_move(self, placed: dict, responses: dict | None = None):
        """``("remove", pebble_id)`` or ``("place", pebble_id, challenge)``."""
        free = [i for i in range(self._k) if i not in placed]
        if placed and (not free or self._rng.random() < 0.35):
            return ("remove", self._rng.choice(sorted(placed)))
        if not free:  # pragma: no cover - implies placed nonempty above
            return None
        return (
            "place",
            free[0],
            self._rng.choice(self._challenges),
        )


def formula_game_player_one_move(
    result: FormulaGameResult, state: State, formula: CnfFormula
):
    """Player I's rank-decreasing winning move from a dead state.

    Returns ``("remove", index-into-state)`` or ``("place", challenge)``;
    mirrors :func:`repro.games.existential.player_one_winning_move`.
    """
    if state in result.alive:
        raise ValueError("Player I has no winning move from a live state")
    rank = result.ranks.get(state)
    if rank is None:
        raise ValueError("state is already inconsistent; the game is over")

    def strictly_worse(candidate: State) -> bool:
        if candidate in result.alive:
            return False
        candidate_rank = result.ranks.get(candidate)
        return candidate_rank is None or candidate_rank < rank

    for index in range(len(state)):
        reduced = _sorted_state(state[:index] + state[index + 1:])
        if strictly_worse(reduced):
            return ("remove", index)
    if len(state) < result.k:
        for challenge in _challenges(formula):
            candidates = [
                _sorted_state(list(state) + [(challenge, response)])
                for response in _responses(formula, challenge)
            ]
            if all(strictly_worse(candidate) for candidate in candidates):
                return ("place", challenge)
    raise AssertionError(
        "dead state with no rank-decreasing move; solver invariant broken"
    )


class OptimalFormulaPlayerOne:
    """Plays the solver-extracted winning line (when Player I wins)."""

    def __init__(self, result: FormulaGameResult, formula: CnfFormula) -> None:
        if result.player_two_wins:
            raise ValueError("Player I has no winning strategy here")
        self._result = result
        self._formula = formula

    def next_move(self, placed: dict, responses: dict | None = None):
        responses = responses or {}
        state = _sorted_state([
            (challenge, responses[pebble_id])
            for pebble_id, challenge in placed.items()
        ])
        if state not in self._result.ranks and state not in self._result.alive:
            return None  # Player II is already inconsistent
        kind, payload = formula_game_player_one_move(
            self._result, state, self._formula
        )
        if kind == "remove":
            # Translate the state index back to a pebble id.
            target = state[payload]
            for pebble_id, challenge in sorted(placed.items()):
                if (challenge, responses[pebble_id]) == target:
                    return ("remove", pebble_id)
            raise AssertionError("winning removal refers to an absent pebble")
        free = [
            i for i in range(self._result.k) if i not in placed
        ]
        return ("place", free[0], payload)


def run_formula_game(
    formula: CnfFormula,
    k: int,
    player_one,
    player_two: PaperPhiKStrategy,
    rounds: int,
) -> FormulaGameTranscript:
    """Simulate the formula game; Player II loses on inconsistency."""
    placed: dict[int, Challenge] = {}
    responses: dict[int, object] = {}
    history = []
    for round_number in range(1, rounds + 1):
        move = player_one.next_move(placed, responses)
        if move is None:
            break
        if move[0] == "remove":
            __, pebble_id = move
            del placed[pebble_id]
            del responses[pebble_id]
            player_two.release(pebble_id)
            history.append(move)
            continue
        __, pebble_id, challenge = move
        try:
            response = player_two.respond(pebble_id, challenge)
        except InconsistentAssignment:
            history.append(move)
            return FormulaGameTranscript(
                rounds_played=round_number,
                player_two_survived=False,
                failure_round=round_number,
                history=tuple(history),
            )
        placed[pebble_id] = challenge
        responses[pebble_id] = response
        history.append((move, response))
        state = _sorted_state([
            (placed[i], responses[i]) for i in placed
        ])
        if not _consistent(state):
            return FormulaGameTranscript(
                rounds_played=round_number,
                player_two_survived=False,
                failure_round=round_number,
                history=tuple(history),
            )
    return FormulaGameTranscript(
        rounds_played=len(history),
        player_two_survived=True,
        failure_round=None,
        history=tuple(history),
    )
