"""The two-player pebble game of Theorem 6.2, on a single input graph.

One pebble per edge ``e = (i, j)`` of the pattern H; pebble ``p_e``
starts on the distinguished node interpreting ``i``.  Player I points at
a placed pebble; Player II must advance it along an edge of G onto a
node that carries no other pebble and is not distinguished -- except the
pebble's own target, reaching which removes the pebble.  Player II wins
iff he is never stuck (on acyclic graphs: iff all pebbles get removed,
iff H is homeomorphic to the distinguished subgraph -- the claim the
test suite verifies against the exact embedding oracle).

The solver is a safety greatest fixpoint over positions, of which there
are at most ``(|G| + 1)^{|E_H|}`` -- polynomial for fixed H.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.graphs.digraph import DiGraph

Node = Hashable

#: Sentinel marking a removed pebble inside a position tuple.
REMOVED = ("__removed__",)

Position = tuple  # one entry per pattern edge: a node of G, or REMOVED


@dataclass(frozen=True)
class AcyclicGameResult:
    """Outcome of solving the Theorem 6.2 game.

    Attributes
    ----------
    player_two_wins:
        Whether Player II wins from the initial position.
    initial:
        The initial position (pebble e on the image of e's tail).
    alive:
        All positions from which Player II survives indefinitely.
    pattern_edges:
        The pattern edges, in the order used by position tuples.
    """

    player_two_wins: bool
    initial: Position
    alive: frozenset
    pattern_edges: tuple


def _legal_moves(
    graph: DiGraph,
    position: Position,
    pebble: int,
    targets: tuple,
    distinguished: frozenset,
) -> list[Position]:
    """All positions reachable by Player II advancing ``pebble``."""
    location = position[pebble]
    occupied = {
        node
        for index, node in enumerate(position)
        if index != pebble and node is not REMOVED
    }
    moves: list[Position] = []
    for nxt in sorted(graph.successors(location), key=repr):
        if nxt == targets[pebble]:
            # Landing on the pebble's own target removes it instantly;
            # occupancy does not block removal moves (another pebble may
            # legitimately *start* on this node -- homeomorphism paths
            # share endpoints).
            replacement: object = REMOVED
        elif nxt in occupied or nxt in distinguished:
            continue
        else:
            replacement = nxt
        moves.append(
            position[:pebble] + (replacement,) + position[pebble + 1:]
        )
    return moves


def solve_acyclic_game(
    graph: DiGraph,
    pattern: DiGraph,
    assignment: Mapping[Node, Node],
) -> AcyclicGameResult:
    """Solve the game for (graph, pattern, assignment).

    ``assignment`` maps pattern nodes injectively to nodes of ``graph``.
    The solver itself is graph-agnostic; the game characterises
    homeomorphism only on acyclic inputs (Theorem 6.2), which is where
    the test suite exercises the equivalence.
    """
    stripped = pattern.without_isolated_nodes()
    edges = tuple(sorted(stripped.edges, key=repr))
    if not edges:
        raise ValueError("the pattern needs at least one edge")
    images = [assignment[v] for v in stripped.nodes]
    if len(set(images)) != len(images):
        raise ValueError("assignment must be injective")
    for image in images:
        if image not in graph:
            raise ValueError(f"assigned node {image!r} not in the graph")

    targets = tuple(assignment[j] for __, j in edges)
    initial: Position = tuple(assignment[i] for i, __ in edges)
    distinguished = frozenset(images)

    # Explore the reachable position space from the initial position,
    # closing under Player II moves for any challenged pebble.
    reachable: set[Position] = {initial}
    frontier = [initial]
    while frontier:
        position = frontier.pop()
        for pebble, location in enumerate(position):
            if location is REMOVED:
                continue
            for successor in _legal_moves(
                graph, position, pebble, targets, distinguished
            ):
                if successor not in reachable:
                    reachable.add(successor)
                    frontier.append(successor)

    # Safety greatest fixpoint: survive every challenge forever.
    alive = set(reachable)
    changed = True
    while changed:
        changed = False
        for position in list(alive):
            for pebble, location in enumerate(position):
                if location is REMOVED:
                    continue
                moves = _legal_moves(
                    graph, position, pebble, targets, distinguished
                )
                if not any(move in alive for move in moves):
                    alive.discard(position)
                    changed = True
                    break

    return AcyclicGameResult(
        player_two_wins=initial in alive,
        initial=initial,
        alive=frozenset(alive),
        pattern_edges=edges,
    )


def acyclic_game_winner(
    graph: DiGraph,
    pattern: DiGraph,
    assignment: Mapping[Node, Node],
) -> str:
    """``"II"`` if Player II wins the game, else ``"I"``."""
    result = solve_acyclic_game(graph, pattern, assignment)
    return "II" if result.player_two_wins else "I"


def extract_embedding_from_game(
    graph: DiGraph,
    pattern: DiGraph,
    assignment: Mapping[Node, Node],
) -> tuple[tuple, ...] | None:
    """Theorem 6.2's proof direction, executably.

    When Player II wins the game on an *acyclic* graph, play it out with
    the proof's max-level Player I (always challenge a pebble on a node
    of maximal level) while Player II follows his winning set; the
    pebble traces are then pairwise node-disjoint simple paths realising
    the homeomorphism.  Returns one path per pattern edge (sorted edge
    order), or ``None`` when Player I wins.

    The test suite checks the extracted paths against
    :func:`repro.fhw.homeomorphism.is_homeomorphic_to_distinguished_subgraph`.
    """
    from repro.graphs.acyclic import levels

    level = levels(graph)  # raises ValueError on cyclic inputs
    result = solve_acyclic_game(graph, pattern, assignment)
    if not result.player_two_wins:
        return None
    stripped = pattern.without_isolated_nodes()
    edges = result.pattern_edges
    targets = tuple(assignment[j] for __, j in edges)
    distinguished = frozenset(
        assignment[v] for v in stripped.nodes
    )

    position = result.initial
    traces: list[list] = [[node] for node in position]
    while any(node is not REMOVED for node in position):
        placed = [
            (index, node)
            for index, node in enumerate(position)
            if node is not REMOVED
        ]
        top = max(level[node] for __, node in placed)
        pebble = min(
            index for index, node in placed if level[node] == top
        )
        moves = _legal_moves(graph, position, pebble, targets, distinguished)
        successor = next(
            move for move in moves if move in result.alive
        )
        landed = successor[pebble]
        traces[pebble].append(
            targets[pebble] if landed is REMOVED else landed
        )
        position = successor
    return tuple(tuple(trace) for trace in traces)
