"""Proposition 5.3, implemented exactly as described.

The paper's polynomial-time decision procedure for the existential
k-pebble game works over *configurations* -- placements of the indexed
pebbles ``p_1..p_k`` / ``q_1..q_k`` (each pebble on an element or off
the board) -- and iterates the predicate::

    Win_k(A, B, c, m)  =  "Player I wins from configuration c within m moves"

for m = 1, 2, ..., (n+1)^{2k}, using the two observations that (i) the
configuration space has at most ``(n+1)^{2k}`` members, so Player I wins
iff he wins within that many moves, and (ii) ``Win(c, m)`` reduces to
``Win(c'', m-1)`` over Player I's <= k*n successor moves and Player II's
<= n replies.  Determinacy (Koenig's lemma) then makes "not Win" a
Player II win.

This is *much* slower than :mod:`repro.games.existential` (which works
on the partial-map quotient of the configuration space) and exists as a
faithful executable of the paper's own algorithm; the test suite
cross-validates the two solvers on small instances.
"""

from __future__ import annotations

import itertools
from typing import Hashable

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.structures.homomorphism import (
    is_partial_homomorphism,
    is_partial_one_to_one_homomorphism,
)
from repro.structures.structure import Structure

Element = Hashable

#: Sentinel for a pebble that is not on the board.
OFF = ("__off__",)

Configuration = tuple  # (a_placements, b_placements), each a k-tuple


def _initial(k: int) -> Configuration:
    return ((OFF,) * k, (OFF,) * k)


def _mapping(configuration: Configuration) -> dict | None:
    """The pebbled correspondence, or None if it is not a function."""
    a_side, b_side = configuration
    mapping: dict = {}
    for a_el, b_el in zip(a_side, b_side):
        if a_el is OFF:
            continue
        if a_el in mapping and mapping[a_el] != b_el:
            return None
        mapping[a_el] = b_el
    return mapping


def _player_two_alive(
    configuration: Configuration, a: Structure, b: Structure, injective: bool
) -> bool:
    mapping = _mapping(configuration)
    if mapping is None:
        return False
    check = (
        is_partial_one_to_one_homomorphism
        if injective
        else is_partial_homomorphism
    )
    return check(mapping, a, b)


def paper_win_algorithm(
    a: Structure, b: Structure, k: int, injective: bool = True
) -> str:
    """Who wins the existential k-pebble game, per Proposition 5.3.

    Returns ``"I"`` or ``"II"``.  Exponential in k and heavy in n even
    for fixed k -- use :func:`repro.games.existential.solve_existential_game`
    for anything but the cross-validation of tiny instances.
    """
    if k < 1:
        raise ValueError("at least one pebble is required")
    a_elements = sorted(a.universe, key=repr)
    b_elements = sorted(b.universe, key=repr)

    # Enumerate all configurations where Player II is still alive; any
    # configuration outside this set is an immediate Player I win.
    alive: set[Configuration] = set()
    placements_a = itertools.product([OFF, *a_elements], repeat=k)
    for a_side in placements_a:
        board = [
            [OFF] if el is OFF else b_elements for el in a_side
        ]
        for b_side in itertools.product(*board):
            configuration = (a_side, tuple(b_side))
            if _player_two_alive(configuration, a, b, injective):
                alive.add(configuration)

    def player_one_moves(configuration: Configuration):
        """Each move: pick up pebble i (placed -> removal; off -> the
        element to place it on); yields (i, action)."""
        a_side, __ = configuration
        for i in range(k):
            if a_side[i] is OFF:
                for element in a_elements:
                    yield (i, element)
            else:
                yield (i, OFF)

    def apply_move(
        configuration: Configuration, pebble: int, action
    ) -> list[Configuration]:
        """Configurations reachable after Player II's reply."""
        a_side, b_side = configuration
        if action is OFF:
            new_a = a_side[:pebble] + (OFF,) + a_side[pebble + 1:]
            new_b = b_side[:pebble] + (OFF,) + b_side[pebble + 1:]
            return [(new_a, new_b)]
        new_a = a_side[:pebble] + (action,) + a_side[pebble + 1:]
        return [
            (new_a, b_side[:pebble] + (reply,) + b_side[pebble + 1:])
            for reply in b_elements
        ]

    # Iterate Win(c, m): win[c] becomes True at the iteration where
    # Player I can force a dead configuration within m moves.
    win: dict[Configuration, bool] = {c: False for c in alive}
    bound = (max(len(a_elements), len(b_elements)) + 1) ** (2 * k)
    m = _metrics.metrics
    m.inc("game.win_runs")
    m.inc("game.configurations", len(alive))
    with _trace.tracer.span(
        "win-algorithm", k=k, configurations=len(alive), injective=injective
    ) as run_span:
        rounds = 0
        for __ in range(bound):
            rounds += 1
            eliminated = 0
            with _trace.tracer.span("round", round=rounds) as round_span:
                for configuration in alive:
                    if win[configuration]:
                        continue
                    for pebble, action in player_one_moves(configuration):
                        replies = apply_move(configuration, pebble, action)
                        if all(
                            reply not in alive or win[reply]
                            for reply in replies
                        ):
                            win[configuration] = True
                            eliminated += 1
                            break
                round_span.annotate(eliminated=eliminated)
            m.inc("game.rounds")
            m.inc("game.configurations_eliminated", eliminated)
            m.observe("game.eliminated_per_round", eliminated)
            if not eliminated:
                break
        run_span.annotate(rounds=rounds)

    initial = _initial(k)
    player_one_wins = initial not in alive or win[initial]
    return "I" if player_one_wins else "II"
