"""The level-scheduled solitaire pebble game (FHW's Lemma 4 stand-in).

The paper cites a *single-player* pebble game from [FHW80] whose
solvability characterises homeomorphism on acyclic inputs; the original
figure-level description is not part of the supplied text, so -- per the
substitution policy in DESIGN.md -- we implement the variant the paper's
own proof of Theorem 6.2 directly supports: a single player moves the
pebbles of the two-player game, but may only ever move a pebble whose
node has *maximal level* among the pebbled nodes (the level of a node
being the length of the longest path leaving it).

The proof of Theorem 6.2 shows that any successful max-level-scheduled
play traces pairwise node-disjoint paths, and conversely a homeomorphic
embedding yields such a play; hence, on DAGs::

    solitaire solvable  <=>  H homeomorphic to the distinguished subgraph

which the test suite verifies against the exact embedding oracle.
Solvability is plain reachability over at most ``(|G|+1)^{|E_H|}``
positions -- polynomial for fixed H.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.games.acyclic import REMOVED, _legal_moves
from repro.graphs.acyclic import levels
from repro.graphs.digraph import DiGraph

Node = Hashable


def solitaire_game_solvable(
    graph: DiGraph,
    pattern: DiGraph,
    assignment: Mapping[Node, Node],
) -> bool:
    """Whether the level-scheduled solitaire game can remove all pebbles.

    Requires an acyclic ``graph`` (levels are undefined otherwise).
    """
    level = levels(graph)  # raises ValueError on cyclic graphs
    stripped = pattern.without_isolated_nodes()
    edges = tuple(sorted(stripped.edges, key=repr))
    if not edges:
        raise ValueError("the pattern needs at least one edge")
    images = [assignment[v] for v in stripped.nodes]
    if len(set(images)) != len(images):
        raise ValueError("assignment must be injective")

    targets = tuple(assignment[j] for __, j in edges)
    initial = tuple(assignment[i] for i, __ in edges)
    distinguished = frozenset(images)

    seen = {initial}
    frontier = [initial]
    while frontier:
        position = frontier.pop()
        placed = [
            (index, node)
            for index, node in enumerate(position)
            if node is not REMOVED
        ]
        if not placed:
            return True
        top = max(level[node] for __, node in placed)
        for pebble, node in placed:
            if level[node] != top:
                continue  # the scheduler only releases max-level pebbles
            for successor in _legal_moves(
                graph, position, pebble, targets, distinguished
            ):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
    return False
