"""An interactive runner for the existential k-pebble game.

The exact solver of :mod:`repro.games.existential` decides who wins; this
module lets concrete *strategies* actually play, which is how the
reproduction validates the hand-built Player II strategy of Theorem 6.6
(too large for the exact solver) against adversarial Player I schedules.

Pebbles are indexed ``0 .. k-1``.  A round is: Player I picks a pebble --
removing it if placed, otherwise placing it on an element of A -- and, on
placements, Player II answers with an element of B.  Player II survives
the round iff the pebbled correspondence (plus constants) remains a
partial one-to-one homomorphism.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Protocol, Sequence

from repro.games.existential import (
    ExistentialGameResult,
    player_one_winning_move,
)
from repro.structures.homomorphism import (
    is_partial_homomorphism,
    is_partial_one_to_one_homomorphism,
)
from repro.structures.structure import Structure

Element = Hashable


@dataclass(frozen=True)
class PlaceMove:
    """Player I places pebble ``pebble`` on ``element`` (of A)."""

    pebble: int
    element: Element


@dataclass(frozen=True)
class RemoveMove:
    """Player I picks up pebble ``pebble`` (currently placed)."""

    pebble: int


Move = PlaceMove | RemoveMove


@dataclass
class GameState:
    """Current boards: pebble index -> element, for each structure."""

    k: int
    board_a: dict[int, Element] = field(default_factory=dict)
    board_b: dict[int, Element] = field(default_factory=dict)

    def position(self) -> frozenset:
        """The current position as a set of (a, b) pairs."""
        return frozenset(
            (self.board_a[i], self.board_b[i]) for i in self.board_a
        )

    def free_pebbles(self) -> list[int]:
        """Indices of pebbles not currently placed."""
        return [i for i in range(self.k) if i not in self.board_a]

    def mapping(self) -> dict:
        """The pebbled correspondence as a map (may be inconsistent)."""
        return {
            self.board_a[i]: self.board_b[i] for i in sorted(self.board_a)
        }


class PlayerOneStrategy(Protocol):
    """Chooses Player I's move each round (None ends the run early)."""

    def next_move(self, state: GameState, round_number: int) -> Move | None:
        """The move for this round, or ``None`` to stop playing."""


class PlayerTwoStrategy(Protocol):
    """Chooses Player II's response to each placement."""

    def respond(
        self, state: GameState, pebble: int, element: Element
    ) -> Element:
        """The element of B answering Player I's placement."""

    def notify_removal(self, state: GameState, pebble: int) -> None:
        """Called after Player I removes a pebble (for bookkeeping)."""


@dataclass(frozen=True)
class GameTranscript:
    """The record of a simulated game.

    ``player_two_survived`` is False iff some round produced a position
    that is not a partial one-to-one homomorphism; ``failure_round`` then
    holds its 1-based index.
    """

    rounds_played: int
    player_two_survived: bool
    failure_round: int | None
    history: tuple[tuple[Move, Element | None], ...]


def run_existential_game(
    a: Structure,
    b: Structure,
    k: int,
    player_one: PlayerOneStrategy,
    player_two: PlayerTwoStrategy,
    rounds: int,
    injective: bool = True,
) -> GameTranscript:
    """Play ``rounds`` rounds and report whether Player II survived."""
    state = GameState(k=k)
    history: list[tuple[Move, Element | None]] = []
    check = (
        is_partial_one_to_one_homomorphism
        if injective
        else is_partial_homomorphism
    )
    for round_number in range(1, rounds + 1):
        move = player_one.next_move(state, round_number)
        if move is None:
            break
        if isinstance(move, RemoveMove):
            if move.pebble not in state.board_a:
                raise ValueError(
                    f"Player I removed unplaced pebble {move.pebble}"
                )
            del state.board_a[move.pebble]
            del state.board_b[move.pebble]
            player_two.notify_removal(state, move.pebble)
            history.append((move, None))
            continue
        if move.pebble in state.board_a:
            raise ValueError(f"Player I re-placed pebble {move.pebble}")
        if move.element not in a.universe:
            raise ValueError(f"{move.element!r} is not an element of A")
        state.board_a[move.pebble] = move.element
        answer = player_two.respond(state, move.pebble, move.element)
        if answer not in b.universe:
            raise ValueError(f"{answer!r} is not an element of B")
        state.board_b[move.pebble] = answer
        history.append((move, answer))
        mapping = state.mapping()
        consistent = len(mapping) == len(state.board_a) or all(
            state.board_b[i] == mapping[state.board_a[i]]
            for i in state.board_a
        )
        if not consistent or not check(mapping, a, b):
            return GameTranscript(
                rounds_played=round_number,
                player_two_survived=False,
                failure_round=round_number,
                history=tuple(history),
            )
    return GameTranscript(
        rounds_played=len(history),
        player_two_survived=True,
        failure_round=None,
        history=tuple(history),
    )


# ---------------------------------------------------------------------------
# Player I strategies
# ---------------------------------------------------------------------------


class RandomPlayerOne:
    """A seeded random adversary: mixes placements and removals."""

    def __init__(
        self, a: Structure, seed: int, removal_bias: float = 0.3
    ) -> None:
        self._elements = sorted(a.universe, key=repr)
        self._rng = random.Random(seed)
        self._removal_bias = removal_bias

    def next_move(self, state: GameState, round_number: int) -> Move | None:
        free = state.free_pebbles()
        placed = sorted(state.board_a)
        if placed and (
            not free or self._rng.random() < self._removal_bias
        ):
            return RemoveMove(self._rng.choice(placed))
        if not free:  # pragma: no cover - implies placed nonempty above
            return None
        return PlaceMove(
            self._rng.choice(free), self._rng.choice(self._elements)
        )


class ScriptedPlayerOne:
    """Plays a fixed move list, then stops."""

    def __init__(self, moves: Sequence[Move]) -> None:
        self._moves = list(moves)

    def next_move(self, state: GameState, round_number: int) -> Move | None:
        if round_number - 1 < len(self._moves):
            return self._moves[round_number - 1]
        return None


class SolverPlayerOne:
    """Plays optimally from an exact-solver result (when Player I wins).

    Translates the solver's set-level winning move into a pebble-level
    move; guaranteed to defeat any Player II within the solver's rank
    bound when the solver declared Player I the winner.
    """

    def __init__(
        self, result: ExistentialGameResult, a: Structure, b: Structure
    ) -> None:
        if result.player_two_wins:
            raise ValueError("Player I has no winning strategy here")
        self._result = result
        self._a = a
        self._b = b

    def next_move(self, state: GameState, round_number: int) -> Move | None:
        position = state.position()
        if position not in self._result.ranks and position not in self._result.family:
            return None  # Player II already dead; nothing to do
        if position in self._result.family:  # pragma: no cover - defensive
            return None
        kind, payload = player_one_winning_move(
            self._result, position, self._a, self._b
        )
        if kind == "place":
            free = state.free_pebbles()
            if not free:
                # Duplicate pebbles forced the set below k; lift one.
                duplicate = self._find_duplicate(state)
                return RemoveMove(duplicate)
            return PlaceMove(free[0], payload)
        # kind == "remove": payload is an (a, b) pair.
        for pebble in sorted(state.board_a):
            pair = (state.board_a[pebble], state.board_b[pebble])
            if pair == payload:
                return RemoveMove(pebble)
        raise AssertionError("winning removal refers to an absent pair")

    def _find_duplicate(self, state: GameState) -> int:
        seen: dict[tuple, int] = {}
        for pebble in sorted(state.board_a):
            pair = (state.board_a[pebble], state.board_b[pebble])
            if pair in seen:
                return pebble
            seen[pair] = pebble
        raise AssertionError("no free pebble and no duplicate pair")


# ---------------------------------------------------------------------------
# Player II strategies
# ---------------------------------------------------------------------------


class FamilyStrategy:
    """Player II playing from a winning-strategy family (Definition 4.7).

    The family must be closed under subfunctions and have the forth
    property; both hold for the solver's output, so this strategy never
    loses when the solver declared Player II the winner.
    """

    def __init__(self, family: Iterable[frozenset], b: Structure) -> None:
        self._family = frozenset(family)
        self._b_elements = sorted(b.universe, key=repr)

    def respond(
        self, state: GameState, pebble: int, element: Element
    ) -> Element:
        current = frozenset(
            (state.board_a[i], state.board_b[i])
            for i in state.board_a
            if i != pebble
        )
        # A re-pebbled element must keep its image (function-ness).
        for i in state.board_a:
            if i != pebble and state.board_a[i] == element:
                return state.board_b[i]
        for candidate in self._b_elements:
            if current | {(element, candidate)} in self._family:
                return candidate
        # No live answer: concede with an arbitrary element.
        return self._b_elements[0]

    def notify_removal(self, state: GameState, pebble: int) -> None:
        """Nothing to track; the family is memoryless."""


class CopyingStrategy:
    """Player II playing along a fixed (one-to-one) homomorphism h.

    This is the strategy of Proposition 5.4: whenever Player I pebbles a,
    Player II pebbles h(a).  It also captures Example 4.4's "copy the
    moves" strategy, where h embeds the short path into the long one.
    """

    def __init__(self, mapping: dict) -> None:
        self._mapping = dict(mapping)

    def respond(
        self, state: GameState, pebble: int, element: Element
    ) -> Element:
        try:
            return self._mapping[element]
        except KeyError:
            raise ValueError(
                f"copying strategy has no image for {element!r}"
            ) from None

    def notify_removal(self, state: GameState, pebble: int) -> None:
        """Stateless; nothing to do."""
