"""Pebble games: the paper's tool kit (Sections 4-6).

* :mod:`repro.games.existential` -- the existential k-pebble game between
  two structures (Definition 4.3), its winning-strategy families
  (Definition 4.7), the polynomial-time solver (Proposition 5.3), and the
  relation ``A <=_k B`` (Theorem 4.8).  A homomorphism (non-injective)
  variant covers the Datalog refinement of Remark 4.12.
* :mod:`repro.games.simulate` -- an interactive game runner with
  pluggable Player I / Player II strategies, used to validate the
  constructed strategies of Theorem 6.6 under adversarial play.
* :mod:`repro.games.acyclic` -- the two-player pebble game on a single
  (acyclic) input graph from Theorem 6.2.
* :mod:`repro.games.solitaire` -- the level-scheduled single-player
  variant standing in for FHW's Lemma 4 game (see DESIGN.md).
* :mod:`repro.games.formula_game` -- the k-pebble game on CNF formulas
  (Definition 6.5), engine of the Theorem 6.6 lower bound.
"""

from repro.games.acyclic import (
    AcyclicGameResult,
    acyclic_game_winner,
    extract_embedding_from_game,
    solve_acyclic_game,
)
from repro.games.existential import (
    ExistentialGameResult,
    preceq_k,
    solve_existential_game,
    winning_family,
)
from repro.games.formula_game import (
    FormulaGameResult,
    OptimalFormulaPlayerOne,
    PaperPhiKStrategy,
    RandomFormulaPlayerOne,
    formula_game_player_one_move,
    run_formula_game,
    solve_formula_game,
)
from repro.games.simulate import (
    CopyingStrategy,
    FamilyStrategy,
    GameTranscript,
    PlaceMove,
    RandomPlayerOne,
    RemoveMove,
    ScriptedPlayerOne,
    SolverPlayerOne,
    run_existential_game,
)
from repro.games.solitaire import solitaire_game_solvable
from repro.games.win_algorithm import paper_win_algorithm

__all__ = [
    "ExistentialGameResult",
    "solve_existential_game",
    "winning_family",
    "preceq_k",
    "run_existential_game",
    "GameTranscript",
    "PlaceMove",
    "RemoveMove",
    "RandomPlayerOne",
    "ScriptedPlayerOne",
    "SolverPlayerOne",
    "FamilyStrategy",
    "CopyingStrategy",
    "AcyclicGameResult",
    "solve_acyclic_game",
    "acyclic_game_winner",
    "extract_embedding_from_game",
    "solitaire_game_solvable",
    "paper_win_algorithm",
    "FormulaGameResult",
    "solve_formula_game",
    "run_formula_game",
    "formula_game_player_one_move",
    "PaperPhiKStrategy",
    "OptimalFormulaPlayerOne",
    "RandomFormulaPlayerOne",
]
