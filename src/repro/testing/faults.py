"""Deterministic fault injection for the evaluation stack.

The robustness suites need to kill an evaluation at an *exact* point --
the Nth round boundary, the Nth rule processed, the Nth index probe --
and then assert that checkpoints, rollback, and resume leave no trace
of the crash.  Monkeypatching engine internals for that is brittle (the
suites would break on every refactor), so the engines carry four
permanent, feather-weight fault sites instead:

``round``
    hit once per completed fixpoint round (in ``_record_round``, which
    every engine already funnels through);
``rule``
    hit once per rule processed inside a round (every fixpoint engine
    -- codegen included -- plus the incremental propagation loop);
``probe``
    hit once per atom-scan operator executed in the compiled-plan
    interpreter (``_run_plan``); the codegen engine hoists the same
    hits into each generated function's prologue, one per atom op per
    invocation, so probe schedules stay engine-portable;
``kill_worker``
    hit by the parallel engine's *coordinator*, once per live worker
    process at the top of every round it dispatches (pool mode only --
    never inline, never inside a worker).  Unlike the other sites the
    engine *catches* the injected fault and translates it into a real
    ``SIGKILL`` of that worker, so what the test observes is not the
    injection but the production death-detection path: the round's
    results never arrive, the coordinator raises
    :class:`repro.datalog.parallel.WorkerDied`, and the database is
    still at the last barrier.  Hit ``n`` (1-based) maps to round
    ``(n - 1) // W + 1``, worker ``(n - 1) % W`` for a ``W``-worker
    pool, so kill-at-every-(round, worker) schedules enumerate exactly.
``kill_server``
    hit by ``repro serve``'s writer task once per durably written
    checkpoint -- immediately *after* the atomic rename, so the hit
    marks a crash-consistent boundary.  Like ``kill_worker`` the server
    catches the injected fault and translates it into a real
    ``SIGKILL`` of its own process: what the kill/resume drill observes
    is the production crash-restart path (``repro serve --resume``
    restoring the view from the last checkpoint), not the injection.
    Hit ``n`` is the ``n``-th checkpoint the serve session writes, so a
    census of a scripted update stream enumerates every checkpoint
    boundary exactly.
``wal_record``
    hit by the serve writer task once per write-ahead-log record, right
    after the record is appended (and fsynced per policy) but *before*
    the update's response is acknowledged.  The server translates the
    injected fault into a real ``SIGKILL`` of its own process, so hit
    ``n`` kills the server with exactly ``n`` records durable and at
    most ``n - 1`` updates acknowledged -- the kill-at-every-WAL-record
    drill enumerates every applied-update boundary this way and asserts
    ``--resume`` replays the WAL suffix to the last appended epoch with
    zero lost acknowledged updates.
``torn_wal``
    hit inside :meth:`repro.serve.wal.WriteAheadLog.append` before the
    record's bytes go out.  The WAL catches the injected fault, writes
    only a *prefix* of the framed record (a torn tail, exactly what a
    crash mid-``write`` leaves), flushes it, and re-raises; the server
    translates the escape into a real ``SIGKILL``.  Recovery must
    detect the torn tail by its incomplete frame, truncate it, and
    resume at the previous (fully appended) epoch -- the torn record's
    update was never acknowledged, so dropping it loses nothing.

Cost discipline mirrors :mod:`repro.obs.metrics`: instrumented code
calls ``faults.hit("round")`` unconditionally through this module's
mutable global, which is the :data:`NOOP` singleton (an empty method)
unless a test has armed a :class:`FaultPlan` via :func:`inject`.  The
disabled path is one attribute load plus one no-op call per site, and
sites are per round / per rule / per operator -- never per binding.

Determinism: a plan is a plain ``(site, occurrence)`` pair -- "raise at
the Nth hit of this site".  Given the same program, database, and
engine, hit N is always the same physical point, so a trial is exactly
reproducible from its parameters; the seeded suites derive
``occurrence`` from a :class:`random.Random` seed and record it in the
failure message.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

#: The seven permanent fault sites compiled into the engines.
_SITES = (
    "round",
    "rule",
    "probe",
    "kill_worker",
    "kill_server",
    "wal_record",
    "torn_wal",
)


def fault_sites() -> tuple[str, ...]:
    """The site names engines expose (stable, part of the test API)."""
    return _SITES


class InjectedFault(RuntimeError):
    """The controlled failure a :class:`FaultPlan` raises.

    Deliberately *not* a subclass of any engine exception: production
    code must treat it as an unknown crash (roll back, re-raise), and a
    test that sees it escape knows the abort path it exercised.
    """

    def __init__(self, site: str, occurrence: int) -> None:
        self.site = site
        self.occurrence = occurrence
        super().__init__(
            f"injected fault at {site} hit #{occurrence}"
        )


class FaultPlan:
    """Raise :class:`InjectedFault` at the Nth hit of one site.

    ``occurrence`` is 1-based: ``FaultPlan("round", 1)`` fires at the
    first round boundary.  Hits of other sites are counted too (exposed
    via :meth:`hits`) so a test can first *measure* how many rule/probe
    hits a run produces, then schedule faults inside that range.
    """

    __slots__ = ("site", "occurrence", "_counts")

    def __init__(self, site: str, occurrence: int) -> None:
        if site not in _SITES:
            raise ValueError(
                f"unknown fault site {site!r}; expected one of {_SITES}"
            )
        if occurrence < 1:
            raise ValueError(
                f"occurrence is 1-based, got {occurrence}"
            )
        self.site = site
        self.occurrence = occurrence
        self._counts = dict.fromkeys(_SITES, 0)

    def hit(self, site: str) -> None:
        count = self._counts[site] + 1
        self._counts[site] = count
        if site == self.site and count == self.occurrence:
            raise InjectedFault(site, count)

    def hits(self, site: str) -> int:
        """How many times ``site`` has been hit under this plan."""
        return self._counts[site]


class _CountingPlan(FaultPlan):
    """A plan that never fires -- used to census a run's hit counts."""

    def __init__(self) -> None:
        super().__init__(_SITES[0], 1)

    def hit(self, site: str) -> None:
        self._counts[site] += 1


class _NoopFaults:
    """The disabled path: hits vanish.  A singleton (:data:`NOOP`)."""

    __slots__ = ()

    def hit(self, site: str) -> None:
        pass


#: The module-level no-op singleton.
NOOP = _NoopFaults()

#: The active plan.  Instrumented modules read this attribute at call
#: time (``from repro.testing import faults`` then ``faults.faults.hit``);
#: binding the object itself at import time would freeze the state.
faults: FaultPlan | _NoopFaults = NOOP


def disable_faults() -> None:
    """Disarm any active plan (restore the no-op singleton)."""
    global faults
    faults = NOOP


@contextmanager
def inject(site: str, at: int) -> Iterator[FaultPlan]:
    """Arm ``FaultPlan(site, at)`` for the duration of the block.

    Always disarms on exit -- including when the injected fault (or
    anything else) propagates -- so one test cannot leak a live plan
    into the next.  Plans do not nest; arming inside an armed block is
    a test bug and raises ``RuntimeError``.
    """
    global faults
    if faults is not NOOP:
        raise RuntimeError("fault plans do not nest")
    plan = FaultPlan(site, at)
    faults = plan
    try:
        yield plan
    finally:
        faults = NOOP


@contextmanager
def census() -> Iterator[FaultPlan]:
    """Count site hits for a run without ever firing.

    Usage: run the workload under ``with census() as c:`` and read
    ``c.hits("rule")`` afterwards to learn the schedulable range.
    """
    global faults
    if faults is not NOOP:
        raise RuntimeError("fault plans do not nest")
    plan = _CountingPlan()
    faults = plan
    try:
        yield plan
    finally:
        faults = NOOP
