"""Test-support instrumentation that ships with the library.

:mod:`repro.testing.faults` is the deterministic fault-injection
harness the robustness suites drive: it lets a test raise a controlled
:class:`~repro.testing.faults.InjectedFault` at exactly the Nth rule
firing, index probe, or round boundary of an evaluation, so
crash-consistency properties (checkpoint/resume determinism, session
rollback) can be pinned without monkeypatching engine internals.
"""

from repro.testing.faults import (
    FaultPlan,
    InjectedFault,
    census,
    disable_faults,
    fault_sites,
    inject,
)

__all__ = [
    "FaultPlan",
    "InjectedFault",
    "census",
    "disable_faults",
    "fault_sites",
    "inject",
]
