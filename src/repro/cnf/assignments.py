"""Extended truth assignments over literals.

Section 6.2: "we will be considering 'extended' truth assignments in
which we keep track of the truth values assigned to literals ... if x̄_i
is assigned value true, then x_i is assigned value false at the same
time, and vice versa."

:class:`ExtendedAssignment` is that object, with the bookkeeping Player II
needs in the formula game: values carry *support counts* (how many pebbles
currently force them) and evaporate when unsupported, matching "a truth
value is removed from a literal as soon as no pebbled node forces it".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cnf.formulas import Literal


class InconsistentAssignment(Exception):
    """Raised when a literal would be made both true and false.

    In the formula game this is exactly the event "Player I wins".
    """


@dataclass
class ExtendedAssignment:
    """A partial, reference-counted assignment of truth values to literals.

    Each ``assign`` must later be matched by a ``release``; the truth value
    of a literal persists while its support count is positive.  Assigning a
    value to ``x`` simultaneously fixes ``~x`` (and vice versa).
    """

    _values: dict[str, bool] = field(default_factory=dict)
    _support: dict[str, int] = field(default_factory=dict)

    def value(self, literal: Literal) -> bool | None:
        """Current truth value of ``literal``, or ``None`` if undetermined."""
        variable_value = self._values.get(literal.variable)
        if variable_value is None:
            return None
        return variable_value if literal.positive else not variable_value

    def is_determined(self, literal: Literal) -> bool:
        """Whether the literal currently has a truth value."""
        return literal.variable in self._values

    def determined_variables(self) -> frozenset[str]:
        """Variables that currently carry a truth value."""
        return frozenset(self._values)

    def assign(self, literal: Literal, value: bool) -> None:
        """Give ``literal`` the truth value ``value`` and add one support.

        Raises :class:`InconsistentAssignment` if the literal already has
        the opposite value -- the losing event for Player II.
        """
        variable_value = value if literal.positive else not value
        current = self._values.get(literal.variable)
        if current is not None and current != variable_value:
            raise InconsistentAssignment(
                f"literal {literal} already has value {not value}"
            )
        self._values[literal.variable] = variable_value
        self._support[literal.variable] = (
            self._support.get(literal.variable, 0) + 1
        )

    def release(self, literal: Literal) -> None:
        """Drop one unit of support; the value evaporates at zero support."""
        count = self._support.get(literal.variable, 0)
        if count <= 0:
            raise ValueError(f"literal {literal} has no support to release")
        if count == 1:
            del self._support[literal.variable]
            del self._values[literal.variable]
        else:
            self._support[literal.variable] = count - 1

    def as_dict(self) -> dict[str, bool]:
        """The current variable assignment as a plain dict (copy)."""
        return dict(self._values)

    def __len__(self) -> int:
        return len(self._values)
