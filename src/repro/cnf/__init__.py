"""CNF formulas, extended truth assignments, and satisfiability.

Section 6.2 of the paper reduces SATISFIABILITY to the two-disjoint-paths
query and then plays k-pebble games *on Boolean formulas* (Definition
6.5).  This subpackage supplies the formulas, the "extended" truth
assignments over literals used by those games, a DPLL satisfiability
checker for ground truth, and the complete formula phi_k.
"""

from repro.cnf.assignments import ExtendedAssignment, InconsistentAssignment
from repro.cnf.formulas import (
    CnfFormula,
    Clause,
    Literal,
    complete_formula,
    pigeonhole_style_formula,
)
from repro.cnf.sat import all_satisfying_assignments, is_satisfiable, satisfying_assignment

__all__ = [
    "Literal",
    "Clause",
    "CnfFormula",
    "complete_formula",
    "pigeonhole_style_formula",
    "ExtendedAssignment",
    "InconsistentAssignment",
    "is_satisfiable",
    "satisfying_assignment",
    "all_satisfying_assignments",
]
