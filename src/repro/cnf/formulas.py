"""CNF formulas: literals, clauses, and the paper's example formulas.

The reduction of Section 6.2 keys several objects off the formula's
*literal occurrences* (one switch per occurrence), so clauses here keep
their literals as ordered tuples -- duplicate occurrences inside a clause
matter (the paper's own Figure 5 example is the formula ``x1 OR x1``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True, order=True)
class Literal:
    """A propositional literal: a variable or its negation.

    ``Literal.parse`` accepts ``"x1"`` and ``"~x1"`` / ``"!x1"``.
    """

    variable: str
    positive: bool = True

    def __post_init__(self) -> None:
        if not self.variable:
            raise ValueError("literal variable name must be non-empty")

    @classmethod
    def parse(cls, text: str) -> "Literal":
        """Parse ``"x"`` or ``"~x"`` / ``"!x"`` into a literal."""
        text = text.strip()
        if text.startswith(("~", "!")):
            return cls(text[1:].strip(), positive=False)
        return cls(text, positive=True)

    @property
    def complement(self) -> "Literal":
        """The complementary literal (x <-> ~x)."""
        return Literal(self.variable, not self.positive)

    def __str__(self) -> str:
        return self.variable if self.positive else f"~{self.variable}"


@dataclass(frozen=True)
class Clause:
    """A disjunction of literal *occurrences* (order and multiplicity kept).

    Multiplicity matters for the FHW reduction: each occurrence of a
    literal in a clause gets its own switch in ``G_phi``.
    """

    literals: tuple[Literal, ...]

    def __init__(self, literals: Iterable[Literal | str]) -> None:
        parsed = tuple(
            lit if isinstance(lit, Literal) else Literal.parse(lit)
            for lit in literals
        )
        if not parsed:
            raise ValueError("a clause needs at least one literal")
        object.__setattr__(self, "literals", parsed)

    def __iter__(self) -> Iterator[Literal]:
        return iter(self.literals)

    def __len__(self) -> int:
        return len(self.literals)

    def distinct_literals(self) -> frozenset[Literal]:
        """The set of distinct literals (for satisfaction checks)."""
        return frozenset(self.literals)

    def __str__(self) -> str:
        return "(" + " | ".join(str(lit) for lit in self.literals) + ")"


@dataclass(frozen=True)
class CnfFormula:
    """A conjunction of clauses over named variables.

    Examples
    --------
    >>> phi = CnfFormula.parse("x1 | x1; ~x1 | x2")
    >>> len(phi.clauses)
    2
    >>> phi.variables
    ('x1', 'x2')
    """

    clauses: tuple[Clause, ...]

    def __init__(self, clauses: Iterable[Clause | Iterable[Literal | str]]) -> None:
        built = tuple(
            clause if isinstance(clause, Clause) else Clause(clause)
            for clause in clauses
        )
        if not built:
            raise ValueError("a CNF formula needs at least one clause")
        object.__setattr__(self, "clauses", built)

    @classmethod
    def parse(cls, text: str) -> "CnfFormula":
        """Parse ``"x1 | ~x2; x2 | x3"`` (clauses split on ``;``)."""
        clause_texts = [part for part in text.split(";") if part.strip()]
        return cls(
            Clause(part.split("|")) for part in clause_texts
        )

    @property
    def variables(self) -> tuple[str, ...]:
        """Variable names, sorted."""
        return tuple(sorted({
            lit.variable for clause in self.clauses for lit in clause
        }))

    @property
    def literals(self) -> tuple[Literal, ...]:
        """All 2n literals over the formula's variables, sorted."""
        return tuple(sorted(
            itertools.chain.from_iterable(
                (Literal(v, True), Literal(v, False)) for v in self.variables
            )
        ))

    def occurrences(self) -> tuple[tuple[int, int, Literal], ...]:
        """Every literal occurrence as ``(clause_index, slot, literal)``.

        The FHW reduction builds one switch per entry of this tuple.
        """
        return tuple(
            (i, j, lit)
            for i, clause in enumerate(self.clauses)
            for j, lit in enumerate(clause.literals)
        )

    def occurrence_count(self, literal: Literal) -> int:
        """Number of occurrences of ``literal`` across all clauses."""
        return sum(
            1
            for clause in self.clauses
            for lit in clause.literals
            if lit == literal
        )

    def evaluate(self, assignment: dict[str, bool]) -> bool:
        """Truth value under a total assignment; KeyError if partial."""
        return all(
            any(
                assignment[lit.variable] == lit.positive
                for lit in clause.literals
            )
            for clause in self.clauses
        )

    def __str__(self) -> str:
        return " & ".join(str(clause) for clause in self.clauses)


def complete_formula(k: int) -> CnfFormula:
    """The complete (unsatisfiable) formula phi_k of Section 6.2.

    The unique CNF formula with 2^k distinct clauses, each containing k
    distinct literals, over variables ``x1, .., xk``.  Player II wins the
    k-pebble formula game on phi_k while Player I wins the (k+1)-pebble
    game -- the engine of Theorem 6.6.
    """
    if k < 1:
        raise ValueError("k must be positive")
    variables = [f"x{i}" for i in range(1, k + 1)]
    clauses = [
        Clause(
            Literal(v, positive)
            for v, positive in zip(variables, signs)
        )
        for signs in itertools.product((True, False), repeat=k)
    ]
    return CnfFormula(clauses)


def pigeonhole_style_formula(k: int) -> CnfFormula:
    """The paper's 2-pebble example: ``x1 & x2 & ... & xk & (~x1 | ... | ~xk)``.

    Unsatisfiable with k variables, yet Player I wins the formula game
    with only 2 pebbles (Section 6.2).
    """
    if k < 1:
        raise ValueError("k must be positive")
    variables = [f"x{i}" for i in range(1, k + 1)]
    clauses = [Clause([Literal(v)]) for v in variables]
    clauses.append(Clause(Literal(v, False) for v in variables))
    return CnfFormula(clauses)
