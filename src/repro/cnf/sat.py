"""Satisfiability: a small DPLL solver used as ground truth.

The reproduction never assumes P != NP; it *checks* the FHW reduction
(``phi satisfiable <=> G_phi has the two disjoint paths``) on concrete
formulas, and this module supplies the left-hand side of that check.
"""

from __future__ import annotations

from typing import Iterator

from repro.cnf.formulas import CnfFormula, Literal


def _unit_and_pure(
    clauses: list[frozenset[Literal]], assignment: dict[str, bool]
) -> list[frozenset[Literal]] | None:
    """Apply unit propagation; return simplified clauses or None on conflict."""
    changed = True
    while changed:
        changed = False
        simplified: list[frozenset[Literal]] = []
        for clause in clauses:
            live: set[Literal] = set()
            satisfied = False
            for lit in clause:
                value = assignment.get(lit.variable)
                if value is None:
                    live.add(lit)
                elif value == lit.positive:
                    satisfied = True
                    break
            if satisfied:
                continue
            if not live:
                return None
            if len(live) == 1:
                lit = next(iter(live))
                assignment[lit.variable] = lit.positive
                changed = True
            else:
                simplified.append(frozenset(live))
        clauses = simplified
    return clauses


def _dpll(
    clauses: list[frozenset[Literal]], assignment: dict[str, bool]
) -> dict[str, bool] | None:
    clauses = _unit_and_pure(clauses, assignment)
    if clauses is None:
        return None
    if not clauses:
        return assignment
    # Branch on the smallest literal of the first clause (deterministic).
    literal = min(clauses[0])
    for value in (literal.positive, not literal.positive):
        trial = dict(assignment)
        trial[literal.variable] = value
        result = _dpll(list(clauses), trial)
        if result is not None:
            return result
    return None


def satisfying_assignment(formula: CnfFormula) -> dict[str, bool] | None:
    """A satisfying total assignment, or ``None`` if unsatisfiable."""
    clauses = [clause.distinct_literals() for clause in formula.clauses]
    partial = _dpll(clauses, {})
    if partial is None:
        return None
    # Complete the assignment on untouched variables.
    assignment = dict(partial)
    for variable in formula.variables:
        assignment.setdefault(variable, True)
    return assignment


def is_satisfiable(formula: CnfFormula) -> bool:
    """Whether the formula has a satisfying assignment."""
    return satisfying_assignment(formula) is not None


def all_satisfying_assignments(
    formula: CnfFormula,
) -> Iterator[dict[str, bool]]:
    """Enumerate all total satisfying assignments (exponential; small use)."""
    variables = formula.variables
    total = len(variables)

    def assignments(index: int, current: dict[str, bool]) -> Iterator[dict]:
        if index == total:
            if formula.evaluate(current):
                yield dict(current)
            return
        for value in (False, True):
            current[variables[index]] = value
            yield from assignments(index + 1, current)
        del current[variables[index]]

    yield from assignments(0, {})
