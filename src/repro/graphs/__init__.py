"""Directed graphs with distinguished nodes.

The case study of the paper (Section 6) is about queries on directed
graphs ``G = (V, E, s_1, ..., s_l)`` with distinguished nodes.  This
subpackage provides the graph type, path utilities (simple paths,
avoiding paths, node-disjoint path search), acyclicity utilities, and the
generators for every example structure in the paper.
"""

from repro.graphs.acyclic import is_acyclic, levels, topological_order
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import (
    complete_digraph,
    crossed_paths_structure_pair,
    cycle_graph,
    disjoint_paths_graph,
    layered_random_dag,
    path_graph,
    path_pair_structures,
    random_digraph,
)
from repro.graphs.paths import (
    all_simple_cycles_through,
    all_simple_paths,
    avoiding_path_exists,
    has_path,
    node_disjoint_simple_paths,
    reachable_from,
    shortest_path,
    simple_path_lengths,
    walk_length_profile,
)

__all__ = [
    "DiGraph",
    "is_acyclic",
    "topological_order",
    "levels",
    "has_path",
    "reachable_from",
    "shortest_path",
    "all_simple_paths",
    "simple_path_lengths",
    "walk_length_profile",
    "avoiding_path_exists",
    "node_disjoint_simple_paths",
    "all_simple_cycles_through",
    "path_graph",
    "cycle_graph",
    "complete_digraph",
    "disjoint_paths_graph",
    "random_digraph",
    "layered_random_dag",
    "path_pair_structures",
    "crossed_paths_structure_pair",
    "path_pair_structures",
]
