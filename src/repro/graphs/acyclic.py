"""Acyclicity utilities: topological order and FHW levels.

The second FHW dichotomy restricts inputs to acyclic graphs; the proof of
Theorem 6.2 uses the *level* of a node -- the length of the longest path
starting there -- to schedule Player I's challenges.  Levels are only
well-defined on DAGs.
"""

from __future__ import annotations

from typing import Hashable

from repro.graphs.digraph import DiGraph

Node = Hashable


def topological_order(graph: DiGraph) -> tuple | None:
    """A topological order of the nodes, or ``None`` if the graph has a cycle.

    Kahn's algorithm; deterministic (ties broken by ``repr``).
    """
    indegree = {v: graph.in_degree(v) for v in graph.nodes}
    ready = sorted((v for v, d in indegree.items() if d == 0), key=repr)
    order: list[Node] = []
    while ready:
        node = ready.pop()
        order.append(node)
        for nxt in sorted(graph.successors(node), key=repr):
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                ready.append(nxt)
        ready.sort(key=repr)
    if len(order) != len(graph):
        return None
    return tuple(order)


def is_acyclic(graph: DiGraph) -> bool:
    """Whether the graph is a DAG.  Self-loops count as cycles."""
    return topological_order(graph) is not None


def levels(graph: DiGraph) -> dict:
    """The level of each node: length of the longest path starting there.

    Exactly the quantity used in the proof of Theorem 6.2 ("define the
    level of a node in G to be the length of the longest path in G from
    that node").  Raises ``ValueError`` on cyclic graphs, where levels are
    undefined.
    """
    order = topological_order(graph)
    if order is None:
        raise ValueError("levels are only defined on acyclic graphs")
    level = {v: 0 for v in graph.nodes}
    for node in reversed(order):
        for nxt in graph.successors(node):
            level[node] = max(level[node], level[nxt] + 1)
    return level
