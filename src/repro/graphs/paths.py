"""Path utilities: reachability, simple paths, avoiding paths, and the
exact node-disjoint simple-path search.

``node_disjoint_simple_paths`` is the exponential ground-truth oracle that
underlies the exact homeomorphism checker (Section 6); everything the paper
proves expressible or inexpressible is cross-validated against it on small
instances.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Iterator, Sequence

from repro.graphs.digraph import DiGraph

Node = Hashable
Path = tuple


def has_path(graph: DiGraph, source: Node, target: Node) -> bool:
    """Whether a (possibly empty) directed path runs from source to target.

    A node reaches itself via the empty path.
    """
    return target in reachable_from(graph, source)


def reachable_from(graph: DiGraph, source: Node) -> frozenset:
    """All nodes reachable from ``source`` (including itself)."""
    if source not in graph:
        raise ValueError(f"source {source!r} not in graph")
    seen = {source}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for nxt in graph.successors(node):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return frozenset(seen)


def shortest_path(graph: DiGraph, source: Node, target: Node) -> Path | None:
    """A shortest directed path as a node tuple, or ``None``.

    The trivial path ``(source,)`` is returned when source == target.
    """
    if source not in graph or target not in graph:
        raise ValueError("endpoints must be nodes of the graph")
    parents: dict[Node, Node] = {source: source}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        if node == target:
            path = [node]
            while parents[path[-1]] != path[-1]:
                path.append(parents[path[-1]])
            return tuple(reversed(path))
        for nxt in graph.successors(node):
            if nxt not in parents:
                parents[nxt] = node
                frontier.append(nxt)
    return None


def all_simple_paths(
    graph: DiGraph,
    source: Node,
    target: Node,
    avoid: Iterable[Node] = (),
    max_length: int | None = None,
) -> Iterator[Path]:
    """Enumerate all simple directed paths from source to target.

    Parameters
    ----------
    avoid:
        Nodes the path may not visit (endpoints excluded from the check
        only if they are the endpoints themselves).
    max_length:
        Optional bound on path length in edges.

    Paths are yielded as node tuples; the single-node path is yielded when
    ``source == target`` and source is not avoided.
    """
    forbidden = frozenset(avoid)
    if source in forbidden or target in forbidden:
        return
    if source not in graph or target not in graph:
        raise ValueError("endpoints must be nodes of the graph")

    stack: list[Node] = [source]
    on_path = {source}

    def extend() -> Iterator[Path]:
        if stack[-1] == target and len(stack) >= 1:
            yield tuple(stack)
            # A simple path may not revisit target, so stop extending here
            # unless target == source and we have the trivial path (cycles
            # through target are not simple paths from source to target).
            return
        if max_length is not None and len(stack) - 1 >= max_length:
            return
        for nxt in sorted(graph.successors(stack[-1]), key=repr):
            if nxt in on_path or nxt in forbidden:
                continue
            stack.append(nxt)
            on_path.add(nxt)
            yield from extend()
            on_path.discard(nxt)
            stack.pop()

    yield from extend()


def simple_path_lengths(
    graph: DiGraph, source: Node, target: Node
) -> frozenset[int]:
    """The set of lengths (in edges) of simple source->target paths.

    Used by the even-simple-path query and by Example 3.4's infinitary
    "path length in P" formulas.
    """
    return frozenset(
        len(path) - 1 for path in all_simple_paths(graph, source, target)
    )


def avoiding_path_exists(
    graph: DiGraph, source: Node, target: Node, avoid: Iterable[Node]
) -> bool:
    """Whether an ``avoid``-avoiding directed path source -> target exists.

    This is the ground-truth semantics of the paper's Example 2.1 program
    (for a single avoided node) and of the ``Q_{1,l}`` programs of Theorem
    6.1.  Following those programs, the path must have at least one edge
    and neither endpoint may be an avoided node.
    """
    forbidden = frozenset(avoid)
    if source in forbidden or target in forbidden:
        return False
    if source not in graph or target not in graph:
        raise ValueError("endpoints must be nodes of the graph")
    seen: set[Node] = set()
    frontier = deque(
        nxt for nxt in graph.successors(source) if nxt not in forbidden
    )
    while frontier:
        node = frontier.popleft()
        if node in seen:
            continue
        seen.add(node)
        if node == target:
            return True
        for nxt in graph.successors(node):
            if nxt not in forbidden and nxt not in seen:
                frontier.append(nxt)
    return False


def walk_length_profile(
    graph: DiGraph, max_length: int
) -> dict[tuple, frozenset[int]]:
    """Which walk lengths (1..max_length) connect each node pair.

    Dynamic programming over boolean reachability layers; the ground
    truth behind Example 3.4's infinitary "walk length in P" formulas.
    """
    if max_length < 1:
        raise ValueError("max_length must be positive")
    nodes = sorted(graph.nodes, key=repr)
    current: dict[Node, frozenset] = {
        v: graph.successors(v) for v in nodes
    }
    lengths: dict[tuple, set[int]] = {}
    for n in range(1, max_length + 1):
        for u in nodes:
            for v in current[u]:
                lengths.setdefault((u, v), set()).add(n)
        if n < max_length:
            current = {
                u: frozenset(
                    w
                    for v in current[u]
                    for w in graph.successors(v)
                )
                for u in nodes
            }
    return {pair: frozenset(values) for pair, values in lengths.items()}


def all_simple_cycles_through(
    graph: DiGraph, node: Node, avoid: Iterable[Node] = ()
) -> Iterator[Path]:
    """Enumerate simple cycles through ``node`` as ``(node, ..., node)``.

    A self-loop edge of a pattern graph H maps to a simple cycle through
    the corresponding distinguished node (Section 6.1, last paragraph of
    the proof of Theorem 6.1); this enumerates the candidates.
    """
    forbidden = frozenset(avoid)
    if node in forbidden:
        return
    for pred in sorted(graph.predecessors(node), key=repr):
        if pred == node:
            if node not in forbidden:
                yield (node, node)
            continue
        for path in all_simple_paths(graph, node, pred, avoid=forbidden):
            yield path + (node,)


def node_disjoint_simple_paths(
    graph: DiGraph,
    terminal_pairs: Sequence[tuple],
    avoid: Iterable[Node] = (),
) -> tuple[Path, ...] | None:
    """Find pairwise node-disjoint simple paths realising ``terminal_pairs``.

    Parameters
    ----------
    terminal_pairs:
        A sequence of ``(source, target)`` pairs; the i-th returned path
        runs from ``source_i`` to ``target_i``.
    avoid:
        Nodes no path may use at all.

    Disjointness follows the paper's footnote: two simple paths are
    node-disjoint if they share no node, *except that endpoints may be
    equal*.  Interior nodes must avoid every other path entirely
    (endpoints included); endpoints may coincide only with endpoints.

    Returns the tuple of paths, or ``None`` if no realisation exists.
    This is a backtracking search -- exponential in general (the problem is
    NP-complete for two pairs, Theorem 6.6) -- and is used as the exact
    oracle on small instances.
    """
    forbidden = frozenset(avoid)
    endpoints: set[Node] = set()
    for source, target in terminal_pairs:
        if source in forbidden or target in forbidden:
            return None
        endpoints.add(source)
        endpoints.add(target)

    chosen: list[Path] = []

    def interiors(path: Path) -> frozenset:
        return frozenset(path[1:-1])

    def conflict(path: Path) -> bool:
        """Whether ``path`` collides with already-chosen paths."""
        path_interior = interiors(path)
        path_all = frozenset(path)
        for other in chosen:
            other_interior = interiors(other)
            other_all = frozenset(other)
            # Interior of one may not meet any node of the other.
            if path_interior & other_all:
                return True
            if other_interior & path_all:
                return True
            # Endpoint sharing is allowed; identical endpoints of distinct
            # pattern edges are exactly how homeomorphisms share H-nodes.
        return False

    def search(index: int) -> tuple[Path, ...] | None:
        if index == len(terminal_pairs):
            return tuple(chosen)
        source, target = terminal_pairs[index]
        # Interior nodes may not be endpoints of *any* pair: distinguished
        # nodes of G interpret distinct H-nodes, and a simple path through a
        # distinguished node would break node-disjointness elsewhere.  The
        # path's own endpoints are naturally allowed.
        blocked = (forbidden | endpoints) - {source, target}
        if source == target:
            candidates = all_simple_cycles_through(graph, source)
        else:
            candidates = all_simple_paths(graph, source, target, avoid=())
        for path in candidates:
            if len(path) < 2:
                continue  # an H-edge needs a path with at least one edge
            if interiors(path) & blocked:
                continue
            if frozenset(path) & forbidden:
                continue
            if conflict(path):
                continue
            chosen.append(path)
            result = search(index + 1)
            if result is not None:
                return result
            chosen.pop()
        return None

    return search(0)
