"""An immutable directed graph with optional distinguished nodes.

The paper's input graphs carry distinguished nodes ``s_1, ..., s_l`` which
become constant symbols when the graph is viewed as a relational structure.
:meth:`DiGraph.to_structure` performs exactly that conversion.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Mapping

from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary

Node = Hashable
Edge = tuple


class DiGraph:
    """A finite directed graph (no multi-edges), optionally with
    distinguished nodes.

    Parameters
    ----------
    nodes:
        Iterable of nodes; nodes appearing in ``edges`` are added
        automatically.
    edges:
        Iterable of ``(u, v)`` pairs.  Self-loops are allowed (the paper's
        class ``C`` explicitly considers roots with self-loops).
    distinguished:
        Ordered mapping from names (e.g. ``"s1"``) to nodes.  Distinct
        names must denote distinct nodes, matching the paper's convention
        ``s_i != s_j`` for ``i != j``.
    """

    __slots__ = ("_succ", "_pred", "_edges", "_distinguished", "_hash")

    def __init__(
        self,
        nodes: Iterable[Node] = (),
        edges: Iterable[Edge] = (),
        distinguished: Mapping[str, Node] | None = None,
    ) -> None:
        edge_set = frozenset((u, v) for u, v in edges)
        node_set = set(nodes)
        for u, v in edge_set:
            node_set.add(u)
            node_set.add(v)
        distinguished = dict(distinguished or {})
        for name, node in distinguished.items():
            if node not in node_set:
                raise ValueError(
                    f"distinguished node {name}={node!r} not in the graph"
                )
        values = list(distinguished.values())
        if len(set(values)) != len(values):
            raise ValueError(
                f"distinguished nodes must be pairwise distinct: {distinguished}"
            )
        succ: dict[Node, set] = {v: set() for v in node_set}
        pred: dict[Node, set] = {v: set() for v in node_set}
        for u, v in edge_set:
            succ[u].add(v)
            pred[v].add(u)
        self._succ = {v: frozenset(s) for v, s in succ.items()}
        self._pred = {v: frozenset(p) for v, p in pred.items()}
        self._edges = edge_set
        self._distinguished = distinguished
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> frozenset:
        """The node set."""
        return frozenset(self._succ)

    @property
    def edges(self) -> frozenset:
        """The edge set as ``(u, v)`` pairs."""
        return self._edges

    @property
    def distinguished(self) -> dict[str, Node]:
        """Mapping from distinguished-node names to nodes (copy)."""
        return dict(self._distinguished)

    def distinguished_nodes(self) -> tuple:
        """Distinguished nodes in declaration order."""
        return tuple(self._distinguished.values())

    def successors(self, node: Node) -> frozenset:
        """Out-neighbours of ``node``."""
        return self._succ[node]

    def predecessors(self, node: Node) -> frozenset:
        """In-neighbours of ``node``."""
        return self._pred[node]

    def out_degree(self, node: Node) -> int:
        """Number of out-neighbours."""
        return len(self._succ[node])

    def in_degree(self, node: Node) -> int:
        """Number of in-neighbours."""
        return len(self._pred[node])

    def has_edge(self, u: Node, v: Node) -> bool:
        """Whether edge ``(u, v)`` is present."""
        return (u, v) in self._edges

    def sources(self) -> frozenset:
        """Nodes of in-degree 0 (entry points of FHW switches)."""
        return frozenset(v for v in self._succ if not self._pred[v])

    def sinks(self) -> frozenset:
        """Nodes of out-degree 0 (exit points of FHW switches)."""
        return frozenset(v for v in self._succ if not self._succ[v])

    def isolated_nodes(self) -> frozenset:
        """Nodes with no incident edges.

        The paper assumes pattern graphs have no isolated nodes; the
        classifier strips them via :meth:`without_isolated_nodes`.
        """
        return frozenset(
            v for v in self._succ if not self._succ[v] and not self._pred[v]
        )

    def __len__(self) -> int:
        return len(self._succ)

    def __contains__(self, node: object) -> bool:
        return node in self._succ

    def number_of_edges(self) -> int:
        """Number of edges."""
        return len(self._edges)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def with_distinguished(self, distinguished: Mapping[str, Node]) -> "DiGraph":
        """A copy with the given distinguished-node assignment."""
        return DiGraph(self.nodes, self._edges, distinguished)

    def without_distinguished(self) -> "DiGraph":
        """A copy with no distinguished nodes."""
        return DiGraph(self.nodes, self._edges)

    def add_edges(self, edges: Iterable[Edge]) -> "DiGraph":
        """A copy with extra edges (and their endpoints) added."""
        return DiGraph(self.nodes, set(self._edges) | set(edges), self._distinguished)

    def add_nodes(self, nodes: Iterable[Node]) -> "DiGraph":
        """A copy with extra (possibly isolated) nodes added."""
        return DiGraph(set(self.nodes) | set(nodes), self._edges, self._distinguished)

    def remove_nodes(self, nodes: Iterable[Node]) -> "DiGraph":
        """A copy with ``nodes`` (and incident edges) removed."""
        removed = set(nodes)
        hit = removed & set(self._distinguished.values())
        if hit:
            raise ValueError(f"cannot remove distinguished nodes: {sorted(map(repr, hit))}")
        keep = self.nodes - removed
        edges = {
            (u, v) for u, v in self._edges if u in keep and v in keep
        }
        return DiGraph(keep, edges, self._distinguished)

    def without_isolated_nodes(self) -> "DiGraph":
        """A copy with isolated, non-distinguished nodes removed."""
        isolated = self.isolated_nodes() - set(self._distinguished.values())
        return self.remove_nodes(isolated)

    def subgraph(self, nodes: Iterable[Node]) -> "DiGraph":
        """The induced subgraph on ``nodes`` (distinguished map dropped)."""
        keep = set(nodes)
        extra = keep - self.nodes
        if extra:
            raise ValueError(f"nodes not in graph: {sorted(map(repr, extra))}")
        edges = {(u, v) for u, v in self._edges if u in keep and v in keep}
        return DiGraph(keep, edges)

    def reverse(self) -> "DiGraph":
        """The graph with every edge reversed (distinguished map kept)."""
        return DiGraph(
            self.nodes,
            {(v, u) for u, v in self._edges},
            self._distinguished,
        )

    def relabel(self, mapping: Callable[[Node], Node]) -> "DiGraph":
        """Apply an injective relabelling to every node."""
        images = {v: mapping(v) for v in self.nodes}
        if len(set(images.values())) != len(images):
            raise ValueError("relabelling is not injective")
        return DiGraph(
            images.values(),
            {(images[u], images[v]) for u, v in self._edges},
            {name: images[v] for name, v in self._distinguished.items()},
        )

    def disjoint_union(self, other: "DiGraph") -> "DiGraph":
        """Disjoint union, tagging nodes with 0 / 1; distinguished maps merged.

        Distinguished names must not clash.
        """
        clash = set(self._distinguished) & set(other._distinguished)
        if clash:
            raise ValueError(f"clashing distinguished names: {sorted(clash)}")
        left = self.relabel(lambda v: (0, v))
        right = other.relabel(lambda v: (1, v))
        return DiGraph(
            left.nodes | right.nodes,
            left.edges | right.edges,
            {**left.distinguished, **right.distinguished},
        )

    # ------------------------------------------------------------------
    # Structure view
    # ------------------------------------------------------------------

    def to_structure(self) -> Structure:
        """View this graph as a relational structure.

        The vocabulary is ``{E/2}`` plus one constant per distinguished
        node, in declaration order -- exactly the structures on which the
        paper's existential pebble games are played.
        """
        vocabulary = Vocabulary.graph(constants=tuple(self._distinguished))
        return Structure(
            vocabulary,
            self.nodes,
            {"E": self._edges},
            dict(self._distinguished),
        )

    # ------------------------------------------------------------------
    # Equality / display
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            self.nodes == other.nodes
            and self._edges == other._edges
            and self._distinguished == other._distinguished
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (
                    self.nodes,
                    self._edges,
                    tuple(sorted(
                        (name, repr(v))
                        for name, v in self._distinguished.items()
                    )),
                )
            )
        return self._hash

    def __repr__(self) -> str:
        extras = (
            f", distinguished={self._distinguished}"
            if self._distinguished
            else ""
        )
        return (
            f"DiGraph(|V|={len(self._succ)}, |E|={len(self._edges)}{extras})"
        )
