"""Graph generators, including every example structure from the paper.

* :func:`path_graph` / :func:`cycle_graph` / :func:`complete_digraph` --
  stock shapes.
* :func:`path_pair_structures` -- Example 4.4: a short path and a long
  path, on which Player II wins one direction of the existential game and
  Player I the other.
* :func:`crossed_paths_structure_pair` -- Example 4.5: two disjoint paths
  vs. two paths crossing at their middle vertex.
* :func:`disjoint_paths_graph` -- the Theorem 6.6 structure A_k: two
  node-disjoint simple paths of prescribed lengths with four distinguished
  endpoints.
* :func:`random_digraph` / :func:`layered_random_dag` -- seeded random
  instances for property tests and benchmarks.
"""

from __future__ import annotations

import random
from typing import Hashable, Sequence

from repro.graphs.digraph import DiGraph
from repro.structures.structure import Structure

Node = Hashable


def path_graph(n: int, prefix: str = "v") -> DiGraph:
    """A directed path with ``n`` nodes ``prefix0 -> ... -> prefix{n-1}``."""
    if n < 1:
        raise ValueError("a path needs at least one node")
    nodes = [f"{prefix}{i}" for i in range(n)]
    edges = list(zip(nodes, nodes[1:]))
    return DiGraph(nodes, edges)


def cycle_graph(n: int, prefix: str = "v") -> DiGraph:
    """A directed cycle with ``n`` nodes."""
    if n < 1:
        raise ValueError("a cycle needs at least one node")
    nodes = [f"{prefix}{i}" for i in range(n)]
    edges = list(zip(nodes, nodes[1:])) + [(nodes[-1], nodes[0])]
    return DiGraph(nodes, edges)


def complete_digraph(n: int, loops: bool = False) -> DiGraph:
    """The complete directed graph on ``n`` nodes."""
    nodes = list(range(n))
    edges = [
        (u, v) for u in nodes for v in nodes if loops or u != v
    ]
    return DiGraph(nodes, edges)


def path_pair_structures(m: int, n: int) -> tuple[Structure, Structure]:
    """Example 4.4: directed paths with ``m`` and ``n`` vertices.

    Returns ``(A, B)`` as structures over the graph vocabulary (no
    constants).  The paper shows that for ``n > m >= 2`` Player II wins
    the existential k-pebble game on (A, B) for every k, while Player I
    wins the 2-pebble game on (B, A).
    """
    a = path_graph(m, prefix="a")
    b = path_graph(n, prefix="b")
    return a.to_structure(), b.to_structure()


def disjoint_paths_graph(
    length_first: int,
    length_second: int,
    names: Sequence[str] = ("w1", "w2", "w3", "w4"),
) -> DiGraph:
    """Two node-disjoint simple paths with distinguished endpoints.

    The first path has ``length_first`` edges and runs from the node named
    by ``names[0]`` to ``names[1]``; the second has ``length_second`` edges
    from ``names[2]`` to ``names[3]``.  This is the shape of the structure
    A_k in the proof of Theorem 6.6.
    """
    if length_first < 1 or length_second < 1:
        raise ValueError("each path needs at least one edge")
    first = [("p", i) for i in range(length_first + 1)]
    second = [("q", i) for i in range(length_second + 1)]
    edges = list(zip(first, first[1:])) + list(zip(second, second[1:]))
    distinguished = {
        names[0]: first[0],
        names[1]: first[-1],
        names[2]: second[0],
        names[3]: second[-1],
    }
    return DiGraph(first + second, edges, distinguished)


def crossed_paths_structure_pair(n: int) -> tuple[Structure, Structure]:
    """Example 4.5: structures A (disjoint) and B (crossing) for given n.

    A is two disjoint directed paths, each with ``2n + 1`` vertices.  B is
    two directed paths, each with ``2n + 1`` vertices, sharing exactly
    their ``(n+1)``-th vertex.  The paper shows Player I wins the
    existential 3-pebble game on (A, B).
    """
    if n < 1:
        raise ValueError("n must be at least 1")
    length = 2 * n + 1
    a_first = [("a", i) for i in range(1, length + 1)]
    a_second = [("a'", i) for i in range(1, length + 1)]
    a_edges = list(zip(a_first, a_first[1:])) + list(zip(a_second, a_second[1:]))
    a = DiGraph(a_first + a_second, a_edges)

    b_first: list[Node] = [("b", i) for i in range(1, length + 1)]
    b_second: list[Node] = [("b'", i) for i in range(1, length + 1)]
    # The two paths intersect only at their (n+1)-th vertex.
    b_second[n] = b_first[n]
    b_edges = list(zip(b_first, b_first[1:])) + list(zip(b_second, b_second[1:]))
    b = DiGraph(set(b_first) | set(b_second), b_edges)
    return a.to_structure(), b.to_structure()


def random_digraph(
    n: int, edge_probability: float, seed: int, loops: bool = False
) -> DiGraph:
    """A seeded Erdos-Renyi style random directed graph on ``n`` nodes."""
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge probability must lie in [0, 1]")
    rng = random.Random(seed)
    nodes = list(range(n))
    edges = [
        (u, v)
        for u in nodes
        for v in nodes
        if (loops or u != v) and rng.random() < edge_probability
    ]
    return DiGraph(nodes, edges)


def layered_random_dag(
    layers: int, width: int, edge_probability: float, seed: int
) -> DiGraph:
    """A seeded random DAG: ``layers`` layers of ``width`` nodes each,
    edges only from layer i to layer i+1.

    Useful for exercising the acyclic-input algorithms of Theorem 6.2 on
    graphs that are guaranteed to be DAGs by construction.
    """
    if layers < 1 or width < 1:
        raise ValueError("layers and width must be positive")
    rng = random.Random(seed)
    nodes = [(layer, slot) for layer in range(layers) for slot in range(width)]
    edges = [
        ((layer, a), (layer + 1, b))
        for layer in range(layers - 1)
        for a in range(width)
        for b in range(width)
        if rng.random() < edge_probability
    ]
    return DiGraph(nodes, edges)
