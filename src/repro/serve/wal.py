"""The ``repro serve`` write-ahead log: durability between checkpoints.

PR 9's periodic checkpoints bound recovery work but not data loss:
every update acknowledged *since* the last checkpoint silently
vanished on a crash.  This module closes that gap with the classical
database recipe -- log before you acknowledge:

* **Append-before-ack.**  The server's writer task appends one
  :class:`WalRecord` per applied update -- epoch-stamped, CRC-guarded,
  carrying the client's request id -- and only then sends the
  response.  An epoch the client has seen acknowledged is therefore
  always reconstructible: it is either inside the latest checkpoint or
  inside the WAL suffix on top of it.
* **Framed, CRC-guarded records.**  The file is a sequence of frames
  ``<u32 length><u32 crc32><payload>`` (little-endian header, compact
  JSON payload).  The first frame is the *header*: WAL format version,
  the program fingerprint, the ``base_epoch`` the log continues from,
  and a snapshot of the exactly-once dedupe table (see below).  Record
  epochs are contiguous from ``base_epoch + 1``, which :func:`scan_wal`
  verifies -- a gap means corruption, never silence.
* **Torn tails truncate; corruption is loud.**  A crash mid-``write``
  leaves an incomplete final frame.  :func:`scan_wal` distinguishes
  the two failure shapes: a frame whose declared bytes run past
  end-of-file (or whose final-frame CRC fails) is a *torn tail* --
  expected, truncated, reported; a CRC mismatch on a frame with valid
  bytes after it is *mid-file corruption* and raises :class:`WalCorrupt`
  with the record number and byte offset.  The ``torn_wal`` fault site
  (:mod:`repro.testing.faults`) manufactures real torn tails for the
  truncation drills.
* **Rotation = compaction.**  After each durable checkpoint the log
  restarts: a fresh header (``base_epoch`` = checkpoint epoch, current
  dedupe table) is written atomically over the old file via
  :func:`repro.guard.atomic_bytes_dump`.  Replay cost is therefore
  bounded by the checkpoint cadence, and a crash between checkpoint
  and rotation is benign -- recovery skips records at or below the
  checkpoint epoch.
* **fsync policy.**  ``always`` fsyncs every append (acknowledged means
  on-disk, survives power loss); ``interval`` fsyncs at most every
  ``fsync_interval`` seconds (acknowledged survives process death --
  every append is flushed to the OS -- with a bounded power-loss
  window); ``off`` never fsyncs explicitly (bench floor).  All three
  modes flush to the kernel per append, so ``SIGKILL`` loses nothing
  in any mode.
* **Exactly-once recovery.**  Each record carries the client-supplied
  request id (``rid``) plus its row index / row count inside the
  request.  :func:`recover` rebuilds the view *and* the dedupe table:
  a completed request's retry is answered from the table without
  touching the view; a request whose record suffix was cut off mid-way
  resumes at the first unlogged row.  Either way a retried in-flight
  update is applied exactly once, across any number of crashes.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from dataclasses import dataclass, field
from typing import Mapping

from repro.guard import atomic_bytes_dump, program_fingerprint
from repro.obs import metrics as _metrics
from repro.testing import faults as _faults
from repro.testing.faults import InjectedFault

#: WAL format revision, stored in every header frame.
WAL_VERSION = 1

#: The frame header: payload length, then crc32 of the payload.
_FRAME = struct.Struct("<II")

#: Accepted ``fsync`` policies.
FSYNC_MODES = ("always", "interval", "off")

#: Exactly-once table size bound: oldest *completed* entries are
#: evicted first once the table grows past this many request ids.
DEDUPE_MAX = 4096


class WalError(RuntimeError):
    """Base class for write-ahead-log failures (carries the path)."""

    def __init__(self, path: str, message: str) -> None:
        self.path = path
        super().__init__(f"{path}: {message}")


class WalCorrupt(WalError):
    """Mid-file corruption: a damaged record with valid data after it.

    Unlike a torn tail this cannot be explained by a crash during a
    sequential append, so recovery refuses to guess -- the diagnostic
    names the record number and byte offset of the damage.
    """


class WalMismatch(WalError):
    """The WAL was written for a different program.

    Replaying another program's updates would silently converge to a
    wrong view, so the header fingerprint is verified before any
    record is applied (same contract as checkpoint fingerprints).
    """


@dataclass(frozen=True)
class WalRecord:
    """One applied update, as logged before its acknowledgement.

    ``epoch`` is the view epoch the update produced; ``rid`` is the
    client's request id (``None`` for unkeyed updates); ``row_index`` /
    ``rows_total`` place the row inside its (possibly multi-row)
    request; ``applied`` records whether the row changed the EDB (an
    idempotent re-insert applies 0 rows but still bumps the epoch).
    """

    epoch: int
    op: str
    predicate: str
    row: tuple
    rid: str | None = None
    row_index: int = 0
    rows_total: int = 1
    applied: int = 0

    def to_payload(self) -> bytes:
        return json.dumps(
            {
                "e": self.epoch,
                "o": self.op,
                "p": self.predicate,
                "r": list(self.row),
                "k": self.rid,
                "i": self.row_index,
                "n": self.rows_total,
                "a": self.applied,
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")

    @classmethod
    def from_payload(cls, payload: Mapping) -> "WalRecord":
        return cls(
            epoch=payload["e"],
            op=payload["o"],
            predicate=payload["p"],
            row=tuple(payload["r"]),
            rid=payload["k"],
            row_index=payload["i"],
            rows_total=payload["n"],
            applied=payload["a"],
        )


def _frame(payload: bytes) -> bytes:
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def _header_payload(
    base_epoch: int, program_fp: str, dedupe: Mapping
) -> bytes:
    return json.dumps(
        {
            "wal": WAL_VERSION,
            "base_epoch": base_epoch,
            "program": program_fp,
            "dedupe": dict(dedupe),
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")


@dataclass
class WalScan:
    """What :func:`scan_wal` found in one WAL file.

    ``header`` is ``None`` only when the file is empty or its very
    first frame is torn (a crash during creation -- recoverable as "no
    WAL yet").  ``valid_bytes`` is the offset the last intact frame
    ends at; ``torn_bytes`` counts the trailing bytes of an incomplete
    frame (0 for a clean file).
    """

    header: dict | None
    records: list[WalRecord]
    valid_bytes: int
    torn_bytes: int

    @property
    def base_epoch(self) -> int:
        return 0 if self.header is None else self.header["base_epoch"]

    @property
    def last_epoch(self) -> int:
        return self.records[-1].epoch if self.records else self.base_epoch


def scan_wal(path: str) -> WalScan:
    """Read and validate a WAL file, truncation-tolerantly.

    Walks the frames front to back.  An incomplete final frame (torn
    tail) stops the scan and is reported via ``torn_bytes``; a CRC or
    decode failure on a frame with bytes after it raises
    :class:`WalCorrupt`; record epochs must be contiguous from
    ``base_epoch + 1``.  The scan never mutates the file -- callers
    decide whether to truncate (see :func:`recover`).
    """
    with open(path, "rb") as handle:
        data = handle.read()
    frames: list[dict] = []
    offset = 0
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            break  # torn: not even a whole frame header
        length, crc = _FRAME.unpack_from(data, offset)
        end = offset + _FRAME.size + length
        if end > len(data):
            break  # torn: declared payload runs past EOF
        payload = data[offset + _FRAME.size:end]
        damaged = zlib.crc32(payload) != crc
        if not damaged:
            try:
                decoded = json.loads(payload)
            except (ValueError, UnicodeDecodeError):
                damaged = True
        if damaged:
            if end == len(data):
                break  # final frame: a torn in-place write, truncate
            raise WalCorrupt(
                path,
                f"CRC/decode failure in record #{max(len(frames) - 1, 0)} "
                f"at byte {offset} with {len(data) - end} valid-looking "
                "bytes after it -- this is mid-file corruption, not a "
                "torn tail; restore the file from a replica or discard "
                "it explicitly",
            )
        frames.append(decoded)
        offset = end
    torn_bytes = len(data) - offset

    if not frames:
        return WalScan(
            header=None, records=[], valid_bytes=offset,
            torn_bytes=torn_bytes,
        )
    header = frames[0]
    if not isinstance(header, dict) or "wal" not in header:
        raise WalCorrupt(
            path, "first frame is not a WAL header (wrong file type?)"
        )
    if header["wal"] != WAL_VERSION:
        raise WalCorrupt(
            path,
            f"WAL format version {header['wal']} is not the supported "
            f"version {WAL_VERSION}",
        )
    records = []
    expected = header["base_epoch"] + 1
    for index, payload in enumerate(frames[1:]):
        record = WalRecord.from_payload(payload)
        if record.epoch != expected:
            raise WalCorrupt(
                path,
                f"record #{index} carries epoch {record.epoch}, "
                f"expected {expected} (epochs must be contiguous from "
                f"base_epoch {header['base_epoch']})",
            )
        records.append(record)
        expected += 1
    return WalScan(
        header=header, records=records, valid_bytes=offset,
        torn_bytes=torn_bytes,
    )


class WriteAheadLog:
    """An append-only, epoch-stamped log of applied serve updates.

    Create one with :meth:`create` (which writes a fresh header
    atomically -- also how rotation restarts the file); the server
    appends via :meth:`append` and rotates at each checkpoint via
    :meth:`rotate`.  Reading happens only at recovery time, through
    :func:`scan_wal` / :func:`recover` -- a live WAL is write-only.
    """

    def __init__(
        self,
        path: str,
        fsync: str = "interval",
        fsync_interval: float = 0.1,
    ) -> None:
        if fsync not in FSYNC_MODES:
            raise ValueError(
                f"unknown fsync mode {fsync!r} "
                f"(choose from {', '.join(FSYNC_MODES)})"
            )
        if fsync_interval <= 0:
            raise ValueError(
                f"fsync_interval must be positive, got {fsync_interval}"
            )
        self.path = path
        self.fsync_mode = fsync
        self.fsync_interval = fsync_interval
        self.base_epoch = 0
        self.records_appended = 0
        self.rotations = 0
        self.fsyncs = 0
        self._file = None
        self._last_fsync = time.monotonic()

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str,
        base_epoch: int,
        program_fp: str,
        dedupe: Mapping | None = None,
        *,
        fsync: str = "interval",
        fsync_interval: float = 0.1,
    ) -> "WriteAheadLog":
        """Start a fresh WAL at ``base_epoch`` (atomic header write).

        Any previous file at ``path`` is replaced in one ``os.replace``
        -- exactly the checkpoint-write discipline, so a crash during
        creation leaves either the old log or the new one.
        """
        wal = cls(path, fsync=fsync, fsync_interval=fsync_interval)
        wal._start_file(base_epoch, program_fp, dedupe or {})
        return wal

    def _start_file(
        self, base_epoch: int, program_fp: str, dedupe: Mapping
    ) -> None:
        if self._file is not None:
            self._file.close()
        atomic_bytes_dump(
            _frame(_header_payload(base_epoch, program_fp, dedupe)),
            self.path,
        )
        self._file = open(self.path, "ab")
        self.base_epoch = base_epoch
        self.records_appended = 0
        self._last_fsync = time.monotonic()

    def close(self) -> None:
        if self._file is not None:
            if self.fsync_mode != "off":
                self._fsync()
            self._file.close()
            self._file = None

    # -- the hot path ------------------------------------------------------

    def append(self, record: WalRecord) -> None:
        """Durably (per policy) log one applied update.

        Called by the writer task after :meth:`LiveView.apply` and
        *before* the update's acknowledgement.  The ``torn_wal`` fault
        site fires here: an armed plan makes this write a half-frame
        (a genuine torn tail) and re-raises for the server to translate
        into a real ``SIGKILL``.
        """
        if self._file is None:
            raise WalError(self.path, "log is closed")
        frame = _frame(record.to_payload())
        try:
            _faults.faults.hit("torn_wal")
        except InjectedFault:
            # Manufacture the crash shape the truncation drill needs:
            # half a frame on disk, then die (the server SIGKILLs on
            # the re-raised fault).  Recovery must truncate this.
            self._file.write(frame[: len(frame) // 2])
            self._file.flush()
            os.fsync(self._file.fileno())
            raise
        self._file.write(frame)
        self._file.flush()  # process death loses nothing past here
        self.records_appended += 1
        _metrics.metrics.inc("serve.wal.appends")
        if self.fsync_mode == "always":
            self._fsync()
        elif self.fsync_mode == "interval":
            now = time.monotonic()
            if now - self._last_fsync >= self.fsync_interval:
                self._fsync()

    def _fsync(self) -> None:
        os.fsync(self._file.fileno())
        self._last_fsync = time.monotonic()
        self.fsyncs += 1
        _metrics.metrics.inc("serve.wal.fsyncs")

    # -- rotation ----------------------------------------------------------

    def rotate(
        self, base_epoch: int, program_fp: str, dedupe: Mapping
    ) -> None:
        """Compact: restart the log on top of a durable checkpoint.

        The caller (the writer task) invokes this immediately after the
        checkpoint's atomic rename; the new header carries the current
        dedupe table so exactly-once state survives the compaction.  A
        crash before the rotation's own rename leaves the longer
        pre-rotation log, which recovery handles by skipping records at
        or below the checkpoint epoch.
        """
        self._start_file(base_epoch, program_fp, dedupe)
        self.rotations += 1
        _metrics.metrics.inc("serve.wal.rotations")

    # -- observability -----------------------------------------------------

    def info(self) -> dict:
        """The ``wal`` payload of the ``health``/``stats`` verbs."""
        return {
            "path": self.path,
            "fsync": self.fsync_mode,
            "base_epoch": self.base_epoch,
            "records": self.records_appended,
            "rotations": self.rotations,
            "fsyncs": self.fsyncs,
        }


# ---------------------------------------------------------------------------
# Recovery: checkpoint + WAL suffix -> (view, dedupe table).
# ---------------------------------------------------------------------------


@dataclass
class RecoveryReport:
    """What :func:`recover` did, for logs and tests."""

    checkpoint_epoch: int = 0
    wal_base_epoch: int = 0
    replayed: int = 0
    skipped: int = 0
    torn_bytes: int = 0
    epoch: int = 0
    dedupe_entries: int = 0


def merge_dedupe(dedupe: dict, record: WalRecord) -> None:
    """Fold one WAL record into the exactly-once table.

    The table entry mirrors what the live server maintains: how many
    rows of the request are logged, the cumulative applied count, the
    epoch of the last logged row, and whether the request completed
    (its final row is on disk).  Replay reconstructs the same entry the
    crashed server held, so a client retry is answered identically.
    """
    if record.rid is None:
        return
    entry = dedupe.get(record.rid)
    if entry is None:
        entry = {
            "rows_done": 0,
            "applied": 0,
            "epoch": record.epoch,
            "requested": record.rows_total,
            "completed": False,
            "op": record.op,
            "predicate": record.predicate,
        }
        dedupe[record.rid] = entry
    entry["rows_done"] = record.row_index + 1
    entry["applied"] = entry["applied"] + record.applied
    entry["epoch"] = record.epoch
    entry["requested"] = record.rows_total
    entry["completed"] = record.row_index + 1 == record.rows_total


def recover(
    program,
    structure,
    checkpoint_path: str | None = None,
    wal_path: str | None = None,
):
    """Rebuild a live view at the last logged epoch, exactly once.

    1. Load the latest fingerprinted checkpoint (if any) -- the view is
       bit-identical at the checkpoint epoch, as PR 9's drill proves.
    2. Scan the WAL (if any): verify the program fingerprint, tolerate
       a torn tail (truncating the file in place so a subsequent scan
       is clean), and replay every record *above* the checkpoint epoch
       through the ordinary :meth:`LiveView.apply` path -- each replayed
       record must land exactly on its logged epoch.
    3. Rebuild the dedupe table from the WAL header snapshot plus the
       logged records, so retried in-flight requests are applied
       exactly once after the restart.

    Returns ``(view, dedupe, report)``.  Raises :class:`WalMismatch` /
    :class:`WalCorrupt` for wrong-program or damaged logs and
    :class:`~repro.guard.CheckpointMismatch` for bad checkpoints --
    recovery is loud, never quietly wrong.
    """
    from repro.datalog.incremental import Update
    from repro.serve.view import LiveView

    report = RecoveryReport()
    program_fp = program_fingerprint(program)
    if checkpoint_path is not None and os.path.exists(checkpoint_path):
        view = LiveView.resume(program, structure, checkpoint_path)
        report.checkpoint_epoch = view.epoch
    else:
        view = LiveView(program, structure)
    dedupe: dict = {}
    if wal_path is not None and os.path.exists(wal_path):
        scan = scan_wal(wal_path)
        report.torn_bytes = scan.torn_bytes
        if scan.torn_bytes:
            with open(wal_path, "r+b") as handle:
                handle.truncate(scan.valid_bytes)
        if scan.header is not None:
            if scan.header["program"] != program_fp:
                raise WalMismatch(
                    wal_path,
                    "WAL was written for a different program "
                    f"(log {scan.header['program'][:12]}..., offered "
                    f"{program_fp[:12]}...); replaying would corrupt "
                    "the view",
                )
            report.wal_base_epoch = scan.base_epoch
            dedupe = dict(scan.header["dedupe"])
            for record in scan.records:
                if record.epoch > view.epoch:
                    __, snapshot = view.apply(
                        Update(record.op, record.predicate, record.row)
                    )
                    if snapshot.epoch != record.epoch:
                        raise WalCorrupt(
                            wal_path,
                            f"replaying record for epoch {record.epoch} "
                            f"produced epoch {snapshot.epoch}; the log "
                            "and checkpoint disagree",
                        )
                    report.replayed += 1
                    _metrics.metrics.inc("serve.wal.replayed")
                else:
                    report.skipped += 1
                merge_dedupe(dedupe, record)
    report.epoch = view.epoch
    report.dedupe_entries = len(dedupe)
    return view, dedupe, report
