"""The shared live view ``repro serve`` multiplexes clients over.

:class:`LiveView` wraps one
:class:`~repro.datalog.incremental.IncrementalSession` and adds the
three things a concurrent server needs on top of incremental
maintenance:

**Epochs and snapshots.**  Every applied update bumps a monotonically
increasing *epoch*, and after each bump the view publishes an immutable
:class:`ViewSnapshot` -- the IDB relations and the EDB as frozensets.
Reads run against a pinned snapshot, never against the mutating
session, so a query observes one epoch in its entirety no matter how
many updates land while it computes (snapshot consistency).  Because
the session's relations are rebuilt as fresh ``frozenset``s per
snapshot, an old snapshot stays valid forever; pinning is just holding
a reference.

**Two query paths.**  A *view query* answers a goal binding by
filtering the materialised goal relation of the pinned snapshot --
O(answers), no evaluation.  A *magic query* re-derives only what the
binding demands: it builds the bound goal atom (bound positions become
fresh ``__g{i}`` constants, exactly like ``repro run --bind``), runs
the magic-sets rewrite against the snapshot's EDB, and returns the
same rows the filter would -- the classical demand-driven trade-off,
now per-request.  Magic queries accept a per-call
:class:`~repro.guard.ResourceBudget`, which is how per-tenant limits
reach the evaluator.

**Checkpoint / resume.**  A live view is a pure function of
``(program, current EDB)``, so its durable state *is* a
:class:`~repro.guard.MaintenanceCheckpoint`: the fingerprinted EDB
plus ``updates_applied`` (the epoch).  :meth:`LiveView.checkpoint`
writes one (atomically -- see ``repro.guard._atomic_pickle_dump``) and
:meth:`LiveView.resume` rebuilds a view that serves a bit-identical
snapshot at the checkpointed epoch.  ``repro serve --resume`` and the
kill/restart fault drill both go through this pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.datalog.ast import Atom, Constant, Program, Variable
from repro.datalog.evaluation import (
    QUERY_ENGINES,
    QueryResult,
    query as _query,
)
from repro.datalog.incremental import (
    IncrementalSession,
    MaintenanceResult,
    Update,
)
from repro.guard import (
    MaintenanceCheckpoint,
    ResourceBudget,
    program_fingerprint,
)
from repro.structures.structure import Structure

Row = tuple


@dataclass(frozen=True)
class ViewSnapshot:
    """One immutable epoch of the live view.

    ``relations`` is the full IDB interpretation and ``edb`` the EDB in
    ``evaluate``'s ``extra_edb`` shape, both as frozensets -- a query
    pinned to this snapshot can never observe a later update.
    """

    epoch: int
    goal: str
    relations: Mapping[str, frozenset]
    edb: Mapping[str, frozenset]

    @property
    def goal_rows(self) -> frozenset:
        return self.relations[self.goal]


def filter_rows(
    rows: Iterable[Row], bind: Sequence[str | None] | None
) -> list[Row]:
    """The rows matching a positional binding (``None`` = free)."""
    if bind is None:
        return list(rows)
    return [
        row
        for row in rows
        if all(b is None or x == b for x, b in zip(row, bind))
    ]


class LiveView:
    """One program's materialised view, shared by every connection.

    The view itself is *not* thread-safe for writes -- that is the
    point: the server routes all updates through one writer task, and
    the underlying session's single-writer lock turns any violation
    into a loud ``RuntimeError``.  Reads need no coordination at all
    because they only touch immutable snapshots.
    """

    def __init__(
        self,
        program: Program,
        structure: Structure,
        extra_edb: Mapping[str, Iterable[Row]] | None = None,
        epoch: int = 0,
    ) -> None:
        self._program = program
        self._structure = structure
        self._session = IncrementalSession(
            program, structure, extra_edb=extra_edb
        )
        self._program_fp = program_fingerprint(program)
        self._epoch = epoch
        self._snapshot = self._take_snapshot()

    # -- accessors --------------------------------------------------------

    @property
    def program(self) -> Program:
        return self._program

    @property
    def structure(self) -> Structure:
        return self._structure

    @property
    def epoch(self) -> int:
        """Updates applied over the lifetime of the view (resume-aware)."""
        return self._epoch

    @property
    def snapshot(self) -> ViewSnapshot:
        """The current epoch's snapshot (pin by keeping the reference)."""
        return self._snapshot

    @property
    def goal(self) -> str:
        return self._program.goal

    @property
    def program_fp(self) -> str:
        """The program fingerprint checkpoints and WAL headers carry."""
        return self._program_fp

    @property
    def goal_arity(self) -> int:
        return self._program.arity(self._program.goal)

    def _take_snapshot(self) -> ViewSnapshot:
        return ViewSnapshot(
            epoch=self._epoch,
            goal=self._program.goal,
            relations=self._session.relations,
            edb=self._session.current_extra_edb(),
        )

    # -- writes (single-writer: the server's writer task only) ------------

    def apply(self, update: Update) -> tuple[MaintenanceResult, ViewSnapshot]:
        """Apply one update, bump the epoch, publish a new snapshot.

        Raises exactly what the session raises (``ValueError`` for
        malformed updates, :class:`~repro.guard.MaintenanceAborted`
        for budget trips) -- on any failure the epoch does not move and
        the previous snapshot stays current.
        """
        result = self._session.apply(update)
        self._epoch += 1
        self._snapshot = self._take_snapshot()
        return result, self._snapshot

    # -- reads (any task, against a pinned snapshot) -----------------------

    def check_bind(self, bind: Sequence[str | None] | None) -> None:
        """Validate a positional binding; raises ``ValueError``."""
        if bind is None:
            return
        arity = self.goal_arity
        if len(bind) != arity:
            raise ValueError(
                f"'bind' needs {arity} entries for "
                f"{self.goal}/{arity}, got {len(bind)}"
            )
        universe = self._structure.universe
        for entry in bind:
            if entry is not None and entry not in universe:
                raise ValueError(
                    f"'bind' node {entry!r} is not in the graph"
                )

    def query_view(
        self,
        snapshot: ViewSnapshot,
        bind: Sequence[str | None] | None = None,
    ) -> list[Row]:
        """Filter the materialised goal relation of a pinned snapshot."""
        self.check_bind(bind)
        return filter_rows(snapshot.goal_rows, bind)

    def query_magic(
        self,
        snapshot: ViewSnapshot,
        bind: Sequence[str | None] | None = None,
        engine: str = "indexed",
        budget: ResourceBudget | None = None,
    ) -> QueryResult:
        """Demand-driven evaluation of a bound goal on a pinned snapshot.

        Bound positions become fresh constants interpreted by an
        expanded structure (the magic rewrite sees ordinary constants);
        the evaluation reads the *snapshot's* EDB, so the answer is
        consistent with ``query_view`` at the same epoch.  A
        :class:`~repro.guard.BudgetExceeded` from a tripped tenant
        budget propagates to the caller.
        """
        self.check_bind(bind)
        if engine not in QUERY_ENGINES:
            raise ValueError(
                f"unknown engine {engine!r} "
                f"(choose from {', '.join(QUERY_ENGINES)})"
            )
        assignment: dict[str, str] = {}
        terms = []
        for position in range(self.goal_arity):
            entry = None if bind is None else bind[position]
            if entry is None:
                terms.append(Variable(f"x{position + 1}"))
            else:
                name = f"__g{position + 1}"
                assignment[name] = entry
                terms.append(Constant(name))
        structure = (
            self._structure.with_constants(assignment)
            if assignment
            else self._structure
        )
        return _query(
            self._program,
            structure,
            Atom(self.goal, terms),
            extra_edb=snapshot.edb,
            engine=engine,
            magic=True,
            budget=budget,
        )

    # -- durability --------------------------------------------------------

    def checkpoint(self, path: str) -> MaintenanceCheckpoint:
        """Durably record the current epoch (atomic write-then-rename)."""
        ckpt = MaintenanceCheckpoint(
            program_fingerprint=self._program_fp,
            goal=self._program.goal,
            edb=self._snapshot.edb,
            updates_applied=self._epoch,
        )
        ckpt.save(path)
        return ckpt

    @classmethod
    def resume(
        cls, program: Program, structure: Structure, path: str
    ) -> "LiveView":
        """Rebuild a view from a checkpoint: same EDB, same epoch.

        Raises :class:`~repro.guard.CheckpointMismatch` when the file
        is unreadable, truncated, or was taken for a different program.
        """
        ckpt = MaintenanceCheckpoint.load(path)
        ckpt.validate(program_fingerprint(program))
        return cls(
            program,
            structure,
            extra_edb=ckpt.edb,
            epoch=ckpt.updates_applied,
        )
