"""The ``repro serve`` asyncio server: many clients, one live view.

Architecture (one process, one event loop):

* **One writer task.**  Every ``insert``/``delete`` from every
  connection is enqueued as one :class:`_WriteJob` on a single
  ``asyncio.Queue``; the writer task is the *only* caller of
  :meth:`LiveView.apply`, so updates are totally ordered -- the order
  the writer dequeues them is the serial schedule the differential
  suite replays.  The :class:`IncrementalSession` single-writer lock
  stays as a backstop: if a second applier ever appears it raises
  instead of corrupting provenance.  A job's rows are applied
  *synchronously* (no awaits between rows), so a multi-row update is
  one atomic stretch of the serial schedule.
* **Write-ahead log (append-before-ack).**  With a
  :class:`~repro.serve.wal.WriteAheadLog` attached, the writer appends
  one record per applied row -- epoch-stamped, CRC-guarded, carrying
  the client's ``rid`` -- *before* the update's response is released.
  An acknowledged epoch is therefore always recoverable: checkpoint +
  WAL suffix (see :func:`repro.serve.wal.recover`).  At each
  checkpoint the log rotates (compaction); the ``wal_record`` and
  ``torn_wal`` fault sites fire on this path and are translated into a
  real ``SIGKILL`` for the crash drills.
* **Exactly-once updates.**  An update carrying a ``rid`` is deduped:
  a retry of a completed request is answered from the dedupe table
  (``deduped: true``) without touching the view; a retry racing the
  original (same ``rid`` still in flight) awaits the *same* writer
  future; a retry of a half-applied request (crash or error mid-rows)
  resumes at the first unlogged row.  The table is persisted in WAL
  headers and rebuilt by recovery, so the guarantee spans crashes.
* **Overload shedding.**  ``max_queue`` bounds the writer queue: an
  update arriving at a full queue is rejected with the structured
  ``overloaded`` error carrying ``retry_after_ms`` (scaled by the
  backlog) instead of growing the queue without bound.
* **Per-connection outbox + slow-subscriber eviction.**  Each
  connection owns an outbox queue drained by a sender task, so
  responses and push events never interleave mid-line.  ``max_outbox``
  bounds what a slow subscriber can pin: once its outbox is full, its
  deltas are *dropped* (not queued) and the next time it has room it
  gets one ``resync`` event with the predicate's full rows -- bounded
  memory, eventually-correct subscribers.
* **Snapshot reads.**  A query pins ``view.snapshot`` once and answers
  entirely from it; updates landing meanwhile bump the epoch but can
  never tear the answer.
* **Subscriptions + backfill.**  After each applied update the writer
  pushes one ``delta`` event per matching subscription and remembers
  the delta in a bounded history (``history`` epochs).  A resubscribe
  with ``from_epoch`` is backfilled from that history, or answered
  with a ``resync`` (reason ``"gap"``) when the gap outruns it.
* **Tenant budgets.**  ``budget_for(tenant)`` picks the
  :class:`~repro.guard.ResourceBudget` applied to evaluation-backed
  (magic) queries; a trip surfaces as the structured
  ``budget_exceeded`` error and the connection lives on.
* **Checkpoint cadence + kill drills.**  Every ``checkpoint_every``
  applied updates the writer durably checkpoints the view (atomic
  rename), probes the ``kill_server`` fault site, then rotates the
  WAL.  The kill sits *between* checkpoint and rotation on purpose:
  the armed drill exercises exactly the crash window recovery must
  tolerate (a WAL whose base is older than the checkpoint).

Evaluation work (initial fixpoint, maintenance, magic queries) runs
inline on the event loop: the server trades request-level parallelism
for the determinism the differential suite and the counters-mode bench
gate rely on.  Concurrency here means *interleaving* many clients'
requests, not computing two answers at once.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time
from collections import deque
from dataclasses import dataclass, field

from repro._version import __version__
from repro.datalog.incremental import Update
from repro.guard import BudgetExceeded, MaintenanceAborted, ResourceBudget
from repro.obs import metrics as _metrics
from repro.obs.metrics import _quantile
from repro.testing import faults as _faults
from repro.testing.faults import InjectedFault

from repro.serve import protocol
from repro.serve.view import LiveView
from repro.serve.wal import DEDUPE_MAX, WalRecord, WriteAheadLog, merge_dedupe

#: Engines a server will evaluate magic queries with ("parallel" is
#: excluded on purpose: the server is a single process by design).
SERVE_ENGINES = ("indexed", "codegen", "seminaive", "naive", "algebra")

#: Per-queued-job component of the ``retry_after_ms`` overload hint.
RETRY_AFTER_UNIT_MS = 25


@dataclass
class ServeStats:
    """Mutable per-server counters and latency histograms.

    ``observe(verb, seconds)`` records one handled request;
    :meth:`summary` renders the ``stats`` response payload with
    nearest-rank p50/p95/p99 per verb (exact, deterministic -- the
    same quantile rule as :mod:`repro.obs.metrics`).
    """

    started_at: float = field(default_factory=time.monotonic)
    latencies: dict[str, list[float]] = field(default_factory=dict)
    tenants: dict[str, int] = field(default_factory=dict)
    connections_total: int = 0
    checkpoints_written: int = 0
    budget_trips: int = 0
    errors: int = 0
    overloaded: int = 0
    deduped: int = 0
    subscribers_evicted: int = 0
    wal_records: int = 0

    def observe(self, verb: str, seconds: float, tenant: str | None) -> None:
        self.latencies.setdefault(verb, []).append(seconds)
        if tenant is not None:
            self.tenants[tenant] = self.tenants.get(tenant, 0) + 1
        _metrics.metrics.inc(f"serve.requests.{verb}")

    def summary(self) -> dict:
        verbs = {}
        for verb in sorted(self.latencies):
            ordered = sorted(self.latencies[verb])
            verbs[verb] = {
                "count": len(ordered),
                "p50_ms": round(_quantile(ordered, 0.50) * 1000, 3),
                "p95_ms": round(_quantile(ordered, 0.95) * 1000, 3),
                "p99_ms": round(_quantile(ordered, 0.99) * 1000, 3),
            }
        return {
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
            "connections_total": self.connections_total,
            "checkpoints_written": self.checkpoints_written,
            "budget_trips": self.budget_trips,
            "errors": self.errors,
            "overloaded": self.overloaded,
            "deduped": self.deduped,
            "subscribers_evicted": self.subscribers_evicted,
            "wal_records": self.wal_records,
            "verbs": verbs,
            "tenants": dict(sorted(self.tenants.items())),
        }


class _Connection:
    """One client: reader state, outbox queue, subscriptions."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.outbox: asyncio.Queue = asyncio.Queue()
        self.subscriptions: set[str] = set()
        #: Predicates whose deltas were dropped while this subscriber's
        #: outbox was full; healed with one ``resync`` event.
        self.pending_resync: set[str] = set()
        self.closed = False

    def send(self, message: dict) -> None:
        if not self.closed:
            self.outbox.put_nowait(protocol.encode(message))


@dataclass
class _WriteJob:
    """One update request, queued whole for the writer task."""

    op: str
    predicate: str
    rows: list[tuple]
    rid: str | None
    future: asyncio.Future


class ReproServer:
    """The serve subsystem's engine room (CLI-independent, test-driven).

    Parameters
    ----------
    view:
        The shared :class:`LiveView` (fresh or resumed).
    host / port:
        Bind address; ``port=0`` asks the OS for a free port --
        :attr:`port` reports the bound one after :meth:`start`.
    engine:
        Evaluation engine for magic queries (one of
        :data:`SERVE_ENGINES`).
    default_budget / tenant_budgets:
        The :class:`~repro.guard.ResourceBudget` for unnamed tenants
        and per-tenant overrides (name -> budget).
    checkpoint_path / checkpoint_every:
        When both set, the writer checkpoints the view after every
        ``checkpoint_every`` applied updates (and probes the
        ``kill_server`` fault site right after each durable write).
    wal:
        An open :class:`~repro.serve.wal.WriteAheadLog`; when set the
        writer appends every applied row before acknowledging and
        rotates the log at each checkpoint.
    dedupe:
        The initial exactly-once table (from
        :func:`repro.serve.wal.recover`); rids in it are already
        applied and will not be re-applied.
    max_queue:
        Writer-queue bound; ``0`` disables shedding.  An update
        arriving at a full queue gets the ``overloaded`` error with a
        ``retry_after_ms`` hint instead of a queue slot.
    max_outbox:
        Per-subscriber outbox bound; ``0`` disables eviction.  A
        subscriber whose outbox is full has its deltas dropped and is
        healed later with one ``resync`` event.
    history:
        How many epochs of per-predicate deltas to keep for
        ``from_epoch`` resubscribe backfill.
    """

    def __init__(
        self,
        view: LiveView,
        host: str = "127.0.0.1",
        port: int = 0,
        engine: str = "indexed",
        default_budget: ResourceBudget | None = None,
        tenant_budgets: dict[str, ResourceBudget] | None = None,
        checkpoint_path: str | None = None,
        checkpoint_every: int = 0,
        wal: WriteAheadLog | None = None,
        dedupe: dict | None = None,
        max_queue: int = 0,
        max_outbox: int = 0,
        history: int = 256,
    ) -> None:
        if engine not in SERVE_ENGINES:
            raise ValueError(
                f"unknown serve engine {engine!r} "
                f"(choose from {', '.join(SERVE_ENGINES)})"
            )
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if max_queue < 0 or max_outbox < 0 or history < 1:
            raise ValueError(
                "max_queue/max_outbox must be >= 0 and history >= 1"
            )
        self.view = view
        self.host = host
        self.port = port
        self.engine = engine
        self.default_budget = default_budget
        self.tenant_budgets = dict(tenant_budgets or {})
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        self.wal = wal
        self.max_queue = max_queue
        self.max_outbox = max_outbox
        self.stats = ServeStats()
        self._dedupe: dict[str, dict] = dict(dedupe or {})
        self._inflight: dict[str, asyncio.Future] = {}
        self._history: deque = deque(maxlen=history)
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[_Connection] = set()
        self._write_queue: asyncio.Queue = asyncio.Queue()
        self._writer_task: asyncio.Task | None = None
        self._writer_gate: asyncio.Event | None = None
        self._writer_holding = False
        self._stopping = asyncio.Event()

    @property
    def queue_depth(self) -> int:
        """Jobs awaiting the writer, counting one it has dequeued but
        not yet applied -- the admission-control metric."""
        return self._write_queue.qsize() + (1 if self._writer_holding else 0)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind, start the writer task, start accepting clients."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._writer_gate = asyncio.Event()
        self._writer_gate.set()
        self._writer_task = asyncio.create_task(self._writer_loop())

    async def serve_until_stopped(self) -> None:
        """Run until a ``shutdown`` request (or :meth:`stop`) lands."""
        await self._stopping.wait()
        await self.stop()

    async def stop(self) -> None:
        self._stopping.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._writer_task is not None:
            self._writer_task.cancel()
            try:
                await self._writer_task
            except asyncio.CancelledError:
                pass
        if self.wal is not None:
            self.wal.close()
        for connection in list(self._connections):
            connection.closed = True
            try:
                connection.writer.close()
            except Exception:
                pass

    # -- test seams --------------------------------------------------------

    def pause_writer(self) -> None:
        """Hold the writer between jobs (deterministic overload tests)."""
        self._writer_gate.clear()

    def resume_writer(self) -> None:
        self._writer_gate.set()

    # -- the single writer -------------------------------------------------

    async def _writer_loop(self) -> None:
        """The only task that mutates the view.

        Dequeue order *is* the serial schedule: the epoch in each
        update response is this loop's sequence number for it.
        """
        while True:
            job = await self._write_queue.get()
            # A dequeued-but-unapplied job still occupies writer
            # capacity: _writer_holding keeps queue_depth honest while
            # the pause seam (or the gate) holds the job here.
            self._writer_holding = True
            try:
                await self._writer_gate.wait()
                if job.future.cancelled():
                    continue
                try:
                    self._apply_update_job(job)
                except InjectedFault as fault:
                    if fault.site in ("wal_record", "torn_wal"):
                        # The WAL crash drills: the record (or its torn
                        # prefix) is on disk, the ack is not out.  Die
                        # for real -- no atexit, no flushing -- so
                        # --resume proves recovery from the files alone.
                        os.kill(os.getpid(), signal.SIGKILL)
                    if not job.future.done():
                        job.future.set_result(("error", fault))
            finally:
                self._writer_holding = False

    def _apply_update_job(self, job: _WriteJob) -> None:
        """Apply one update request end to end (no awaits: atomic).

        Resumes a half-applied retried request at its first unlogged
        row; logs each applied row to the WAL before the job's future
        (the acknowledgement) is resolved.  ``wal_record``/``torn_wal``
        faults propagate to the writer loop, which SIGKILLs.
        """
        start = 0
        applied = 0
        epoch = self.view.epoch
        entry = self._dedupe.get(job.rid) if job.rid is not None else None
        if entry is not None:
            # A crash (or error) interrupted this request mid-rows:
            # the logged prefix is already applied, resume after it.
            start = entry["rows_done"]
            applied = entry["applied"]
            epoch = entry["epoch"]
        for index in range(start, len(job.rows)):
            row = job.rows[index]
            try:
                result, snapshot = self.view.apply(
                    Update(job.op, job.predicate, row)
                )
            except Exception as exc:
                # Surfaced per-request; rows before this one stay
                # applied (and logged), exactly like a crash here --
                # a retry with the same rid resumes at this row.
                job.future.set_result(("error", exc))
                return
            record = WalRecord(
                epoch=snapshot.epoch,
                op=job.op,
                predicate=job.predicate,
                row=row,
                rid=job.rid,
                row_index=index,
                rows_total=len(job.rows),
                applied=len(result.applied),
            )
            if self.wal is not None:
                self.wal.append(record)  # torn_wal raises through here
                self.stats.wal_records += 1
                _metrics.metrics.inc("serve.wal.appends")
            if job.rid is not None:
                merge_dedupe(self._dedupe, record)
                self._trim_dedupe()
            if self.wal is not None:
                # The kill-at-every-WAL-record drill: record durable,
                # response not yet sent -- at most index acked rows.
                _faults.faults.hit("wal_record")
            applied += len(result.applied)
            epoch = snapshot.epoch
            self._push_deltas(result, snapshot)
            self._maybe_checkpoint()
        job.future.set_result(("ok", (len(job.rows), applied, epoch)))

    def _trim_dedupe(self) -> None:
        """Bound the exactly-once table: evict oldest completed first."""
        while len(self._dedupe) > DEDUPE_MAX:
            for rid, entry in self._dedupe.items():
                if entry["completed"]:
                    del self._dedupe[rid]
                    break
            else:
                del self._dedupe[next(iter(self._dedupe))]

    def _push_deltas(self, result, snapshot) -> None:
        """One ``delta`` event per matching subscription per epoch bump.

        Also records the epoch's deltas in the bounded backfill
        history, and enforces the slow-subscriber bound: a full outbox
        gets no delta (dropped, not queued) and a ``resync`` once it
        has drained.
        """
        self._history.append(
            (snapshot.epoch, result.idb_added, result.idb_removed)
        )
        for connection in list(self._connections):
            for predicate in sorted(connection.subscriptions):
                if (
                    self.max_outbox
                    and connection.outbox.qsize() >= self.max_outbox
                ):
                    if predicate not in connection.pending_resync:
                        connection.pending_resync.add(predicate)
                        self.stats.subscribers_evicted += 1
                        _metrics.metrics.inc("serve.subscribers_evicted")
                    continue
                if predicate in connection.pending_resync:
                    connection.pending_resync.discard(predicate)
                    connection.send(
                        protocol.resync_event(
                            snapshot.epoch,
                            predicate,
                            snapshot.relations.get(predicate, ()),
                            "evicted",
                        )
                    )
                    continue
                connection.send(
                    protocol.delta_event(
                        snapshot.epoch,
                        predicate,
                        result.idb_added.get(predicate, ()),
                        result.idb_removed.get(predicate, ()),
                    )
                )

    def _maybe_checkpoint(self) -> None:
        if not self.checkpoint_path or self.checkpoint_every <= 0:
            return
        if self.view.epoch % self.checkpoint_every != 0:
            return
        self.view.checkpoint(self.checkpoint_path)
        self.stats.checkpoints_written += 1
        _metrics.metrics.inc("serve.checkpoints_written")
        try:
            # The kill drill: an armed plan fires here, after the
            # rename made the checkpoint durable but *before* the WAL
            # rotates -- deliberately the nastiest crash window, where
            # the log's base is older than the checkpoint.  Translate
            # the injected fault into a real SIGKILL -- no atexit, no
            # flushing, the genuine article -- so the restart drill
            # proves --resume needs nothing but the on-disk files.
            _faults.faults.hit("kill_server")
        except InjectedFault:
            os.kill(os.getpid(), signal.SIGKILL)
        if self.wal is not None:
            self.wal.rotate(
                self.view.epoch, self.view.program_fp, self._dedupe
            )
            _metrics.metrics.inc("serve.wal.rotations")

    # -- per-connection plumbing -------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(writer)
        self._connections.add(connection)
        self.stats.connections_total += 1
        sender = asyncio.create_task(self._sender_loop(connection))
        try:
            while not self._stopping.is_set():
                line = await reader.readline()
                if not line:
                    break
                await self._handle_line(connection, line)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            connection.closed = True
            self._connections.discard(connection)
            connection.outbox.put_nowait(None)  # sender sentinel
            try:
                await sender
            except asyncio.CancelledError:
                # Loop teardown cancelled the sender before it saw the
                # sentinel; the connection is going away either way.
                pass
            try:
                writer.close()
            except Exception:
                pass

    async def _sender_loop(self, connection: _Connection) -> None:
        """Drain the outbox: the single point that writes this socket."""
        writer = connection.writer
        while True:
            payload = await connection.outbox.get()
            if payload is None:
                break
            try:
                writer.write(payload)
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                connection.closed = True
                break

    # -- request dispatch --------------------------------------------------

    async def _handle_line(self, connection: _Connection, line: bytes) -> None:
        started = time.perf_counter()
        request_id = None
        tenant = None
        verb = "?"
        try:
            request = protocol.parse_request(line.decode("utf-8", "replace"))
            request_id = request["id"]
            tenant = request["tenant"]
            verb = request["op"]
            response = await self._dispatch(connection, request)
        except protocol.ProtocolError as exc:
            self.stats.errors += 1
            response = protocol.error_response(
                request_id, exc.code, str(exc), **exc.fields
            )
        except BudgetExceeded as exc:
            self.stats.budget_trips += 1
            response = protocol.error_response(
                request_id,
                "budget_exceeded",
                f"query exceeded its tenant budget: {exc.reason} "
                f"(limit {exc.limit}, spent {exc.spent})",
            )
        except Exception as exc:  # keep serving: one bad request != one less client
            self.stats.errors += 1
            response = protocol.error_response(
                request_id, "internal", f"{type(exc).__name__}: {exc}"
            )
        self.stats.observe(verb, time.perf_counter() - started, tenant)
        connection.send(response)

    async def _dispatch(self, connection: _Connection, request: dict) -> dict:
        op = request["op"]
        request_id = request["id"]
        if op == "ping":
            return protocol.ok_response(
                "ping", request_id, epoch=self.view.epoch
            )
        if op == "query":
            return self._handle_query(request)
        if op in ("insert", "delete"):
            return await self._handle_update(request)
        if op == "subscribe":
            return self._handle_subscribe(connection, request)
        if op == "unsubscribe":
            connection.subscriptions.clear()
            connection.pending_resync.clear()
            return protocol.ok_response("unsubscribe", request_id)
        if op == "stats":
            return protocol.ok_response(
                "stats",
                request_id,
                version=__version__,
                protocol=protocol.PROTOCOL_VERSION,
                goal=self.view.goal,
                engine=self.engine,
                epoch=self.view.epoch,
                clients=len(self._connections),
                subscriptions=sum(
                    len(c.subscriptions) for c in self._connections
                ),
                **self.stats.summary(),
            )
        if op == "health":
            payload = {
                "epoch": self.view.epoch,
                "queue_depth": self.queue_depth,
                "queue_capacity": self.max_queue,
                "clients": len(self._connections),
                "dedupe_entries": len(self._dedupe),
            }
            if self.wal is not None:
                payload["wal"] = self.wal.info()
            return protocol.ok_response("health", request_id, **payload)
        if op == "shutdown":
            self._stopping.set()
            return protocol.ok_response("shutdown", request_id)
        raise protocol.ProtocolError("unknown_op", f"unknown op {op!r}")

    def budget_for(self, tenant: str | None) -> ResourceBudget | None:
        if tenant is not None and tenant in self.tenant_budgets:
            return self.tenant_budgets[tenant]
        return self.default_budget

    def _handle_query(self, request: dict) -> dict:
        snapshot = self.view.snapshot  # pinned: updates cannot tear this
        bind = request["bind"]
        try:
            if request["magic"]:
                result = self.view.query_magic(
                    snapshot,
                    bind,
                    engine=self.engine,
                    budget=self.budget_for(request["tenant"]),
                )
                rows = result.answers
            else:
                rows = self.view.query_view(snapshot, bind)
        except ValueError as exc:
            raise protocol.ProtocolError("bad_request", str(exc)) from None
        return protocol.ok_response(
            "query",
            request["id"],
            epoch=snapshot.epoch,
            goal=snapshot.goal,
            magic=request["magic"],
            rows=protocol.rows_payload(rows),
        )

    def _handle_subscribe(self, connection: _Connection, request: dict) -> dict:
        request_id = request["id"]
        predicate = request["predicate"] or self.view.goal
        if predicate not in self.view.program.idb_predicates:
            raise protocol.ProtocolError(
                "bad_request",
                f"{predicate!r} is not an IDB predicate; "
                "subscriptions cover derived relations",
            )
        connection.subscriptions.add(predicate)
        epoch = self.view.epoch
        from_epoch = request.get("from_epoch")
        backfilled = 0
        if from_epoch is not None and from_epoch < epoch:
            backfilled = self._backfill(connection, predicate, from_epoch)
        return protocol.ok_response(
            "subscribe",
            request_id,
            predicate=predicate,
            epoch=epoch,
            backfilled=backfilled,
        )

    def _backfill(
        self, connection: _Connection, predicate: str, from_epoch: int
    ) -> int:
        """Replay missed deltas into the outbox, or resync past a gap.

        Returns the number of delta events queued (0 when the gap
        outran the history and one ``resync`` was queued instead).
        """
        history = list(self._history)
        if not history or history[0][0] > from_epoch + 1:
            # The subscriber's last epoch fell off the bounded delta
            # history: delta continuity is unrecoverable, hand over
            # the full rows instead.
            snapshot = self.view.snapshot
            connection.send(
                protocol.resync_event(
                    snapshot.epoch,
                    predicate,
                    snapshot.relations.get(predicate, ()),
                    "gap",
                )
            )
            return 0
        queued = 0
        for epoch, added, removed in history:
            if epoch <= from_epoch:
                continue
            connection.send(
                protocol.delta_event(
                    epoch,
                    predicate,
                    added.get(predicate, ()),
                    removed.get(predicate, ()),
                )
            )
            queued += 1
        return queued

    async def _handle_update(self, request: dict) -> dict:
        op = request["op"]
        predicate = request["predicate"]
        rid = request.get("rid")
        deduped = False
        if rid is not None:
            entry = self._dedupe.get(rid)
            if entry is not None and entry["completed"]:
                # Exactly-once fast path: the request (possibly from a
                # previous server life -- the table survives crashes in
                # WAL headers) already fully applied.
                self.stats.deduped += 1
                _metrics.metrics.inc("serve.deduped")
                return protocol.ok_response(
                    entry["op"],
                    request["id"],
                    predicate=entry["predicate"],
                    requested=entry["requested"],
                    applied=entry["applied"],
                    epoch=entry["epoch"],
                    deduped=True,
                )
            if rid in self._inflight:
                # A retry racing its original (reconnect before the
                # first ack): share the original's writer future so
                # the rows are applied once, answered twice.
                self.stats.deduped += 1
                _metrics.metrics.inc("serve.deduped")
                future = self._inflight[rid]
                deduped = True
            else:
                future = self._enqueue_update(op, predicate, request, rid)
        else:
            future = self._enqueue_update(op, predicate, request, rid)
        status, payload = await future
        if status == "error":
            exc = payload
            if isinstance(exc, MaintenanceAborted):
                raise protocol.ProtocolError(
                    "maintenance_aborted",
                    f"update rolled back: {exc.reason} "
                    f"(limit {exc.limit})",
                )
            if isinstance(exc, ValueError):
                raise protocol.ProtocolError(
                    "bad_request", str(exc)
                ) from None
            raise exc
        requested, applied, epoch = payload
        response = protocol.ok_response(
            op,
            request["id"],
            predicate=predicate,
            requested=requested,
            applied=applied,
            epoch=epoch,
        )
        if deduped:
            response["deduped"] = True
        return response

    def _enqueue_update(
        self, op: str, predicate: str, request: dict, rid: str | None
    ) -> asyncio.Future:
        """Admission control + enqueue: the overload shed point."""
        depth = self.queue_depth
        if self.max_queue and depth >= self.max_queue:
            self.stats.overloaded += 1
            _metrics.metrics.inc("serve.overloaded")
            retry_after_ms = RETRY_AFTER_UNIT_MS * (
                depth - self.max_queue + 1
            )
            raise protocol.ProtocolError(
                "overloaded",
                f"writer queue is full ({depth} jobs queued, capacity "
                f"{self.max_queue}); retry after {retry_after_ms} ms",
                retry_after_ms=retry_after_ms,
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        job = _WriteJob(op, predicate, list(request["rows"]), rid, future)
        if rid is not None:
            self._inflight[rid] = future
            future.add_done_callback(
                lambda _done, rid=rid: self._inflight.pop(rid, None)
            )
        self._write_queue.put_nowait(job)
        return future


async def run_server(server: ReproServer) -> None:
    """Start a server and run it until shutdown (the CLI's entry)."""
    await server.start()
    await server.serve_until_stopped()
