"""The ``repro serve`` asyncio server: many clients, one live view.

Architecture (one process, one event loop):

* **One writer task.**  Every ``insert``/``delete`` from every
  connection is enqueued as ``(update, future)`` on a single
  ``asyncio.Queue``; the writer task is the *only* caller of
  :meth:`LiveView.apply`, so updates are totally ordered -- the order
  the writer dequeues them is the serial schedule the differential
  suite replays.  The :class:`IncrementalSession` single-writer lock
  stays as a backstop: if a second applier ever appears it raises
  instead of corrupting provenance.
* **Per-connection outbox.**  Each connection owns an outbox queue
  drained by a sender task, so responses and push events from
  different server tasks never interleave mid-line and every client
  sees its responses in request order.
* **Snapshot reads.**  A query pins ``view.snapshot`` once and answers
  entirely from it; updates landing meanwhile bump the epoch but can
  never tear the answer.  The response's ``epoch`` field names the
  snapshot the answer is true at.
* **Subscriptions.**  After the writer applies an update it pushes one
  ``delta`` event per matching subscription (predicate defaults to the
  goal), carrying the epoch and the IDB rows that entered/left.
* **Tenant budgets.**  ``budget_for(tenant)`` picks the
  :class:`~repro.guard.ResourceBudget` applied to evaluation-backed
  (magic) queries; a trip surfaces as the structured
  ``budget_exceeded`` error and the connection lives on.
* **Checkpoint cadence + kill drill.**  Every ``checkpoint_every``
  applied updates the writer durably checkpoints the view (atomic
  rename), then probes the ``kill_server`` fault site.  An armed
  :class:`~repro.testing.faults.FaultPlan` turns the probe into a real
  ``SIGKILL`` of the whole process -- after the checkpoint is durable,
  before anything else happens -- so the fault census enumerates
  exactly the crash-restart boundaries ``--resume`` must survive.

Evaluation work (initial fixpoint, maintenance, magic queries) runs
inline on the event loop: the server trades request-level parallelism
for the determinism the differential suite and the counters-mode bench
gate rely on.  Concurrency here means *interleaving* many clients'
requests, not computing two answers at once.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time
from dataclasses import dataclass, field

from repro._version import __version__
from repro.datalog.incremental import Update
from repro.guard import BudgetExceeded, MaintenanceAborted, ResourceBudget
from repro.obs import metrics as _metrics
from repro.obs.metrics import _quantile
from repro.testing import faults as _faults
from repro.testing.faults import InjectedFault

from repro.serve import protocol
from repro.serve.view import LiveView

#: Engines a server will evaluate magic queries with ("parallel" is
#: excluded on purpose: the server is a single process by design).
SERVE_ENGINES = ("indexed", "codegen", "seminaive", "naive", "algebra")


@dataclass
class ServeStats:
    """Mutable per-server counters and latency histograms.

    ``observe(verb, seconds)`` records one handled request;
    :meth:`summary` renders the ``stats`` response payload with
    nearest-rank p50/p95/p99 per verb (exact, deterministic -- the
    same quantile rule as :mod:`repro.obs.metrics`).
    """

    started_at: float = field(default_factory=time.monotonic)
    latencies: dict[str, list[float]] = field(default_factory=dict)
    tenants: dict[str, int] = field(default_factory=dict)
    connections_total: int = 0
    checkpoints_written: int = 0
    budget_trips: int = 0
    errors: int = 0

    def observe(self, verb: str, seconds: float, tenant: str | None) -> None:
        self.latencies.setdefault(verb, []).append(seconds)
        if tenant is not None:
            self.tenants[tenant] = self.tenants.get(tenant, 0) + 1
        _metrics.metrics.inc(f"serve.requests.{verb}")

    def summary(self) -> dict:
        verbs = {}
        for verb in sorted(self.latencies):
            ordered = sorted(self.latencies[verb])
            verbs[verb] = {
                "count": len(ordered),
                "p50_ms": round(_quantile(ordered, 0.50) * 1000, 3),
                "p95_ms": round(_quantile(ordered, 0.95) * 1000, 3),
                "p99_ms": round(_quantile(ordered, 0.99) * 1000, 3),
            }
        return {
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
            "connections_total": self.connections_total,
            "checkpoints_written": self.checkpoints_written,
            "budget_trips": self.budget_trips,
            "errors": self.errors,
            "verbs": verbs,
            "tenants": dict(sorted(self.tenants.items())),
        }


class _Connection:
    """One client: reader state, outbox queue, subscriptions."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.outbox: asyncio.Queue = asyncio.Queue()
        self.subscriptions: set[str] = set()
        self.closed = False

    def send(self, message: dict) -> None:
        if not self.closed:
            self.outbox.put_nowait(protocol.encode(message))


class ReproServer:
    """The serve subsystem's engine room (CLI-independent, test-driven).

    Parameters
    ----------
    view:
        The shared :class:`LiveView` (fresh or resumed).
    host / port:
        Bind address; ``port=0`` asks the OS for a free port --
        :attr:`port` reports the bound one after :meth:`start`.
    engine:
        Evaluation engine for magic queries (one of
        :data:`SERVE_ENGINES`).
    default_budget / tenant_budgets:
        The :class:`~repro.guard.ResourceBudget` for unnamed tenants
        and per-tenant overrides (name -> budget).
    checkpoint_path / checkpoint_every:
        When both set, the writer checkpoints the view after every
        ``checkpoint_every`` applied updates (and probes the
        ``kill_server`` fault site right after each durable write).
    """

    def __init__(
        self,
        view: LiveView,
        host: str = "127.0.0.1",
        port: int = 0,
        engine: str = "indexed",
        default_budget: ResourceBudget | None = None,
        tenant_budgets: dict[str, ResourceBudget] | None = None,
        checkpoint_path: str | None = None,
        checkpoint_every: int = 0,
    ) -> None:
        if engine not in SERVE_ENGINES:
            raise ValueError(
                f"unknown serve engine {engine!r} "
                f"(choose from {', '.join(SERVE_ENGINES)})"
            )
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        self.view = view
        self.host = host
        self.port = port
        self.engine = engine
        self.default_budget = default_budget
        self.tenant_budgets = dict(tenant_budgets or {})
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        self.stats = ServeStats()
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[_Connection] = set()
        self._write_queue: asyncio.Queue = asyncio.Queue()
        self._writer_task: asyncio.Task | None = None
        self._stopping = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind, start the writer task, start accepting clients."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._writer_task = asyncio.create_task(self._writer_loop())

    async def serve_until_stopped(self) -> None:
        """Run until a ``shutdown`` request (or :meth:`stop`) lands."""
        await self._stopping.wait()
        await self.stop()

    async def stop(self) -> None:
        self._stopping.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._writer_task is not None:
            self._writer_task.cancel()
            try:
                await self._writer_task
            except asyncio.CancelledError:
                pass
        for connection in list(self._connections):
            connection.closed = True
            try:
                connection.writer.close()
            except Exception:
                pass

    # -- the single writer -------------------------------------------------

    async def _writer_loop(self) -> None:
        """The only task that mutates the view.

        Dequeue order *is* the serial schedule: the epoch in each
        update response is this loop's sequence number for it.
        """
        while True:
            update, future = await self._write_queue.get()
            if future.cancelled():
                continue
            try:
                result, snapshot = self.view.apply(update)
            except Exception as exc:  # surfaced per-request, loop lives on
                future.set_result(("error", exc))
                continue
            future.set_result(("ok", (result, snapshot)))
            self._push_deltas(result, snapshot)
            self._maybe_checkpoint()

    def _push_deltas(self, result, snapshot) -> None:
        """One ``delta`` event per matching subscription per epoch bump."""
        for connection in list(self._connections):
            for predicate in sorted(connection.subscriptions):
                connection.send(
                    protocol.delta_event(
                        snapshot.epoch,
                        predicate,
                        result.idb_added.get(predicate, ()),
                        result.idb_removed.get(predicate, ()),
                    )
                )

    def _maybe_checkpoint(self) -> None:
        if not self.checkpoint_path or self.checkpoint_every <= 0:
            return
        if self.view.epoch % self.checkpoint_every != 0:
            return
        self.view.checkpoint(self.checkpoint_path)
        self.stats.checkpoints_written += 1
        _metrics.metrics.inc("serve.checkpoints_written")
        try:
            # The kill drill: an armed plan fires here, after the
            # rename made the checkpoint durable.  Translate the
            # injected fault into a real SIGKILL -- no atexit, no
            # flushing, the genuine article -- so the restart drill
            # proves --resume needs nothing but the checkpoint file.
            _faults.faults.hit("kill_server")
        except InjectedFault:
            os.kill(os.getpid(), signal.SIGKILL)

    # -- per-connection plumbing -------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(writer)
        self._connections.add(connection)
        self.stats.connections_total += 1
        sender = asyncio.create_task(self._sender_loop(connection))
        try:
            while not self._stopping.is_set():
                line = await reader.readline()
                if not line:
                    break
                await self._handle_line(connection, line)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            connection.closed = True
            self._connections.discard(connection)
            connection.outbox.put_nowait(None)  # sender sentinel
            try:
                await sender
            except asyncio.CancelledError:
                # Loop teardown cancelled the sender before it saw the
                # sentinel; the connection is going away either way.
                pass
            try:
                writer.close()
            except Exception:
                pass

    async def _sender_loop(self, connection: _Connection) -> None:
        """Drain the outbox: the single point that writes this socket."""
        writer = connection.writer
        while True:
            payload = await connection.outbox.get()
            if payload is None:
                break
            try:
                writer.write(payload)
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                connection.closed = True
                break

    # -- request dispatch --------------------------------------------------

    async def _handle_line(self, connection: _Connection, line: bytes) -> None:
        started = time.perf_counter()
        request_id = None
        tenant = None
        verb = "?"
        try:
            request = protocol.parse_request(line.decode("utf-8", "replace"))
            request_id = request["id"]
            tenant = request["tenant"]
            verb = request["op"]
            response = await self._dispatch(connection, request)
        except protocol.ProtocolError as exc:
            self.stats.errors += 1
            response = protocol.error_response(request_id, exc.code, str(exc))
        except BudgetExceeded as exc:
            self.stats.budget_trips += 1
            response = protocol.error_response(
                request_id,
                "budget_exceeded",
                f"query exceeded its tenant budget: {exc.reason} "
                f"(limit {exc.limit}, spent {exc.spent})",
            )
        except Exception as exc:  # keep serving: one bad request != one less client
            self.stats.errors += 1
            response = protocol.error_response(
                request_id, "internal", f"{type(exc).__name__}: {exc}"
            )
        self.stats.observe(verb, time.perf_counter() - started, tenant)
        connection.send(response)

    async def _dispatch(self, connection: _Connection, request: dict) -> dict:
        op = request["op"]
        request_id = request["id"]
        if op == "ping":
            return protocol.ok_response(
                "ping", request_id, epoch=self.view.epoch
            )
        if op == "query":
            return self._handle_query(request)
        if op in ("insert", "delete"):
            return await self._handle_update(request)
        if op == "subscribe":
            predicate = request["predicate"] or self.view.goal
            if predicate not in self.view.program.idb_predicates:
                raise protocol.ProtocolError(
                    "bad_request",
                    f"{predicate!r} is not an IDB predicate; "
                    "subscriptions cover derived relations",
                )
            connection.subscriptions.add(predicate)
            return protocol.ok_response(
                "subscribe",
                request_id,
                predicate=predicate,
                epoch=self.view.epoch,
            )
        if op == "unsubscribe":
            connection.subscriptions.clear()
            return protocol.ok_response("unsubscribe", request_id)
        if op == "stats":
            return protocol.ok_response(
                "stats",
                request_id,
                version=__version__,
                protocol=protocol.PROTOCOL_VERSION,
                goal=self.view.goal,
                engine=self.engine,
                epoch=self.view.epoch,
                clients=len(self._connections),
                subscriptions=sum(
                    len(c.subscriptions) for c in self._connections
                ),
                **self.stats.summary(),
            )
        if op == "shutdown":
            self._stopping.set()
            return protocol.ok_response("shutdown", request_id)
        raise protocol.ProtocolError("unknown_op", f"unknown op {op!r}")

    def budget_for(self, tenant: str | None) -> ResourceBudget | None:
        if tenant is not None and tenant in self.tenant_budgets:
            return self.tenant_budgets[tenant]
        return self.default_budget

    def _handle_query(self, request: dict) -> dict:
        snapshot = self.view.snapshot  # pinned: updates cannot tear this
        bind = request["bind"]
        try:
            if request["magic"]:
                result = self.view.query_magic(
                    snapshot,
                    bind,
                    engine=self.engine,
                    budget=self.budget_for(request["tenant"]),
                )
                rows = result.answers
            else:
                rows = self.view.query_view(snapshot, bind)
        except ValueError as exc:
            raise protocol.ProtocolError("bad_request", str(exc)) from None
        return protocol.ok_response(
            "query",
            request["id"],
            epoch=snapshot.epoch,
            goal=snapshot.goal,
            magic=request["magic"],
            rows=protocol.rows_payload(rows),
        )

    async def _handle_update(self, request: dict) -> dict:
        op = request["op"]
        predicate = request["predicate"]
        applied = 0
        epoch = self.view.epoch
        for row in request["rows"]:
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            await self._write_queue.put(
                (Update(op, predicate, row), future)
            )
            status, payload = await future
            if status == "error":
                exc = payload
                if isinstance(exc, MaintenanceAborted):
                    raise protocol.ProtocolError(
                        "maintenance_aborted",
                        f"update rolled back: {exc.reason} "
                        f"(limit {exc.limit})",
                    )
                if isinstance(exc, ValueError):
                    raise protocol.ProtocolError(
                        "bad_request", str(exc)
                    ) from None
                raise exc
            result, snapshot = payload
            applied += len(result.applied)
            epoch = snapshot.epoch
        return protocol.ok_response(
            op,
            request["id"],
            predicate=predicate,
            requested=len(request["rows"]),
            applied=applied,
            epoch=epoch,
        )


async def run_server(server: ReproServer) -> None:
    """Start a server and run it until shutdown (the CLI's entry)."""
    await server.start()
    await server.serve_until_stopped()
