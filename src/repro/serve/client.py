"""A small synchronous client for the ``repro serve`` protocol.

Used by the test suite, the E23 load generator, and the CI smoke
script; applications can use it as-is or as a reference for the wire
contract.  One :class:`ServeClient` is one connection: requests are
issued serially, responses are matched by arrival order (the protocol
guarantees request order), and push events that arrive between
responses are buffered on :attr:`events` for the caller to inspect.

The client is deliberately dependency-free (sockets and
:mod:`json` only) so a script can talk to a server without importing
the evaluation stack.
"""

from __future__ import annotations

import json
import socket


class ServeError(RuntimeError):
    """A structured error response (``ok: false``) from the server."""

    def __init__(self, code: str, message: str) -> None:
        self.code = code
        super().__init__(f"{code}: {message}")


class ServeClient:
    """One blocking connection to a ``repro serve`` server.

    Parameters
    ----------
    host / port:
        The server address.
    tenant:
        Optional tenant name stamped on every request (selects the
        server-side :class:`~repro.guard.ResourceBudget`).
    timeout:
        Socket timeout in seconds for connect and each read.
    """

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str | None = None,
        timeout: float = 30.0,
    ) -> None:
        self.tenant = tenant
        self.events: list[dict] = []
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("r", encoding="utf-8")
        self._next_id = 0

    # -- plumbing ----------------------------------------------------------

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, op: str, **fields) -> dict:
        """Send one request, return its response (raises on ``ok: false``).

        Push events arriving before the response are buffered on
        :attr:`events`.
        """
        self._next_id += 1
        message: dict = {"op": op, "id": self._next_id}
        if self.tenant is not None:
            message["tenant"] = self.tenant
        message.update(fields)
        self._sock.sendall((json.dumps(message) + "\n").encode("utf-8"))
        response = self._read_response()
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServeError(
                error.get("code", "internal"),
                error.get("message", "unknown error"),
            )
        return response

    def _read_response(self) -> dict:
        while True:
            line = self._reader.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            message = json.loads(line)
            if "event" in message:
                self.events.append(message)
                continue
            return message

    def drain_events(self, count: int) -> list[dict]:
        """Block until ``count`` events are buffered; pop and return them.

        Call after an operation known to trigger pushes (an update on a
        subscribed predicate): events may arrive before or after the
        triggering response, so this reads lines until enough are in.
        """
        while len(self.events) < count:
            line = self._reader.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            message = json.loads(line)
            if "event" not in message:
                raise RuntimeError(
                    f"expected a push event, got response {message!r}"
                )
            self.events.append(message)
        drained, self.events = (
            self.events[:count],
            self.events[count:],
        )
        return drained

    # -- verbs -------------------------------------------------------------

    def ping(self) -> dict:
        return self.request("ping")

    def query(
        self,
        bind: list | None = None,
        magic: bool = False,
    ) -> dict:
        fields: dict = {"magic": magic}
        if bind is not None:
            fields["bind"] = bind
        return self.request("query", **fields)

    def insert(self, predicate: str, *rows: list) -> dict:
        return self.request(
            "insert", predicate=predicate, rows=[list(r) for r in rows]
        )

    def delete(self, predicate: str, *rows: list) -> dict:
        return self.request(
            "delete", predicate=predicate, rows=[list(r) for r in rows]
        )

    def subscribe(self, predicate: str | None = None) -> dict:
        fields = {} if predicate is None else {"predicate": predicate}
        return self.request("subscribe", **fields)

    def unsubscribe(self) -> dict:
        return self.request("unsubscribe")

    def stats(self) -> dict:
        return self.request("stats")

    def shutdown(self) -> dict:
        return self.request("shutdown")
