"""Clients for the ``repro serve`` protocol: plain and resilient.

:class:`ServeClient` is one blocking connection: requests are issued
serially, responses are matched by arrival order (the protocol
guarantees request order), and push events that arrive between
responses are buffered on :attr:`events` for the caller to inspect.
Transport failures never escape as raw ``ConnectionError``/``OSError``:
every connect, send, and read is wrapped into a structured
:class:`ServeConnectionError` carrying the host/port and the last
epoch this client observed -- the caller always knows *where* the
stream broke.

:class:`ResilientClient` wraps that connection with the retry
discipline a real client needs against a crash-restarting, sometimes
overloaded server:

* **Reconnect + exponential backoff with deterministic jitter.**  A
  dropped connection is retried with ``min(cap, base * 2^attempt)``
  scaled by a jitter factor drawn from a *seeded* ``random.Random`` --
  under a fixed seed the whole backoff schedule is reproducible (and
  recorded on :attr:`backoffs`).  ``overloaded`` errors honour the
  server's ``retry_after_ms`` hint as a floor.
* **A retry budget that drains.**  Every retry spends one unit from a
  finite budget shared across the client's lifetime; exhaustion raises
  :class:`RetryBudgetExhausted` instead of retrying forever.
* **Idempotent replay of in-flight updates.**  Each ``insert``/
  ``delete`` gets a stable request id (``rid``) *before* its first
  attempt; a retry resends the same rid, and the protocol-v2 server
  dedupes -- the update is applied exactly once no matter how many
  times the ack was lost (even across a server crash: the dedupe table
  lives in the write-ahead log).
* **Resubscribe with epoch-gap recovery.**  The client remembers its
  subscription and last seen epoch; after a reconnect it resubscribes
  with ``from_epoch``, and the server backfills the missed deltas or
  pushes one ``resync`` (full rows) when the gap outran its history.

The module is deliberately dependency-free (sockets, :mod:`json`,
:mod:`random` only) so a script can talk to a server without importing
the evaluation stack.
"""

from __future__ import annotations

import json
import random
import socket
import time


class ServeError(RuntimeError):
    """A structured error response (``ok: false``) from the server.

    ``fields`` holds any extra keys of the wire error object --
    notably ``retry_after_ms`` on ``overloaded`` responses.
    """

    def __init__(self, code: str, message: str, **fields) -> None:
        self.code = code
        self.fields = fields
        super().__init__(f"{code}: {message}")

    @property
    def retry_after_ms(self) -> int | None:
        return self.fields.get("retry_after_ms")


class ServeConnectionError(ConnectionError):
    """The transport to a serve server failed, with context.

    Subclasses :class:`ConnectionError` so existing ``except
    (ConnectionError, OSError)`` call sites keep working, but carries
    the structure retry logic needs: which server (``host``/``port``),
    what the client last knew (``last_epoch``), and what broke
    (``reason``).
    """

    def __init__(
        self, host: str, port: int, last_epoch: int, reason: str
    ) -> None:
        self.host = host
        self.port = port
        self.last_epoch = last_epoch
        super().__init__(
            f"connection to {host}:{port} failed at epoch "
            f"{last_epoch}: {reason}"
        )


class ServeClient:
    """One blocking connection to a ``repro serve`` server.

    Parameters
    ----------
    host / port:
        The server address.
    tenant:
        Optional tenant name stamped on every request (selects the
        server-side :class:`~repro.guard.ResourceBudget`).
    timeout:
        Socket timeout in seconds for connect and each read.
    """

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str | None = None,
        timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self.events: list[dict] = []
        #: Highest epoch observed in any response or event (what a
        #: resubscribe-after-reconnect passes as ``from_epoch``).
        self.last_epoch = 0
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=timeout
            )
        except OSError as exc:
            raise ServeConnectionError(
                host, port, 0, f"connect failed: {exc}"
            ) from exc
        self._reader = self._sock.makefile("r", encoding="utf-8")
        self._next_id = 0

    # -- plumbing ----------------------------------------------------------

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _broke(self, reason: str) -> ServeConnectionError:
        return ServeConnectionError(
            self.host, self.port, self.last_epoch, reason
        )

    def _observe_epoch(self, message: dict) -> None:
        epoch = message.get("epoch")
        if isinstance(epoch, int) and epoch > self.last_epoch:
            self.last_epoch = epoch

    def request(self, op: str, **fields) -> dict:
        """Send one request, return its response (raises on ``ok: false``).

        Push events arriving before the response are buffered on
        :attr:`events`.  Transport failures raise
        :class:`ServeConnectionError`; structured server errors raise
        :class:`ServeError`.
        """
        self._next_id += 1
        message: dict = {"op": op, "id": self._next_id}
        if self.tenant is not None:
            message["tenant"] = self.tenant
        message.update(fields)
        try:
            self._sock.sendall((json.dumps(message) + "\n").encode("utf-8"))
        except OSError as exc:
            raise self._broke(f"send failed: {exc}") from exc
        response = self._read_response()
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServeError(
                error.get("code", "internal"),
                error.get("message", "unknown error"),
                **{
                    key: value
                    for key, value in error.items()
                    if key not in ("code", "message")
                },
            )
        return response

    def _read_line(self) -> dict:
        try:
            line = self._reader.readline()
        except OSError as exc:  # includes socket.timeout
            raise self._broke(f"read failed: {exc}") from exc
        if not line:
            raise self._broke("server closed the connection")
        message = json.loads(line)
        self._observe_epoch(message)
        return message

    def _read_response(self) -> dict:
        while True:
            message = self._read_line()
            if "event" in message:
                self.events.append(message)
                continue
            return message

    def drain_events(self, count: int) -> list[dict]:
        """Block until ``count`` events are buffered; pop and return them.

        Call after an operation known to trigger pushes (an update on a
        subscribed predicate): events may arrive before or after the
        triggering response, so this reads lines until enough are in.
        """
        while len(self.events) < count:
            message = self._read_line()
            if "event" not in message:
                raise RuntimeError(
                    f"expected a push event, got response {message!r}"
                )
            self.events.append(message)
        drained, self.events = (
            self.events[:count],
            self.events[count:],
        )
        return drained

    # -- verbs -------------------------------------------------------------

    def ping(self) -> dict:
        return self.request("ping")

    def query(
        self,
        bind: list | None = None,
        magic: bool = False,
    ) -> dict:
        fields: dict = {"magic": magic}
        if bind is not None:
            fields["bind"] = bind
        return self.request("query", **fields)

    def insert(self, predicate: str, *rows: list, rid: str | None = None) -> dict:
        fields: dict = {
            "predicate": predicate,
            "rows": [list(r) for r in rows],
        }
        if rid is not None:
            fields["rid"] = rid
        return self.request("insert", **fields)

    def delete(self, predicate: str, *rows: list, rid: str | None = None) -> dict:
        fields: dict = {
            "predicate": predicate,
            "rows": [list(r) for r in rows],
        }
        if rid is not None:
            fields["rid"] = rid
        return self.request("delete", **fields)

    def subscribe(
        self,
        predicate: str | None = None,
        from_epoch: int | None = None,
    ) -> dict:
        fields: dict = {}
        if predicate is not None:
            fields["predicate"] = predicate
        if from_epoch is not None:
            fields["from_epoch"] = from_epoch
        return self.request("subscribe", **fields)

    def unsubscribe(self) -> dict:
        return self.request("unsubscribe")

    def stats(self) -> dict:
        return self.request("stats")

    def health(self) -> dict:
        return self.request("health")

    def shutdown(self) -> dict:
        return self.request("shutdown")


class RetryBudgetExhausted(RuntimeError):
    """A :class:`ResilientClient` ran out of retries.

    Carries the drained :attr:`budget` and the terminal failure that
    spent the last unit (:attr:`last_error`).
    """

    def __init__(self, budget: int, last_error: Exception) -> None:
        self.budget = budget
        self.last_error = last_error
        super().__init__(
            f"retry budget ({budget}) exhausted; last error: {last_error}"
        )


class ResilientClient:
    """A :class:`ServeClient` that survives crashes and overload.

    Parameters
    ----------
    host / port / tenant / timeout:
        As for :class:`ServeClient`.
    retry_budget:
        Total retries this client may spend over its lifetime (a
        drained budget raises :class:`RetryBudgetExhausted`).
    backoff_base / backoff_cap:
        The exponential schedule: retry ``n`` sleeps
        ``min(cap, base * 2^n)`` scaled by jitter in ``[0.5, 1.0]``.
    seed:
        Seeds the jitter RNG *and* the rid namespace -- a fixed seed
        makes the whole retry schedule (and every request id)
        reproducible.  Give concurrent clients of one server distinct
        seeds so their rids cannot collide.
    sleep:
        Injectable sleep (tests pass a recorder; default
        :func:`time.sleep`).
    client_factory:
        Injectable connection constructor (tests substitute a scripted
        transport); must accept ``(host, port, tenant=..., timeout=...)``.
    """

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str | None = None,
        timeout: float = 30.0,
        retry_budget: int = 16,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        seed: int = 0,
        sleep=time.sleep,
        client_factory=ServeClient,
    ) -> None:
        if retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout
        self.retry_budget = retry_budget
        self.retries_left = retry_budget
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._rng = random.Random(seed)
        self._rid_prefix = f"rc{seed}"
        self._rid_count = 0
        self._sleep = sleep
        self._client_factory = client_factory
        #: Every backoff actually slept, in order (observability + the
        #: determinism test: same seed, same schedule).
        self.backoffs: list[float] = []
        self.reconnects = 0
        #: Highest epoch observed across all connections.
        self.last_epoch = 0
        self._client: ServeClient | None = None
        self._subscription: tuple[str | None,] | None = None

    # -- plumbing ----------------------------------------------------------

    def close(self) -> None:
        if self._client is not None:
            try:
                self._client.close()
            finally:
                self._client = None

    def __enter__(self) -> "ResilientClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _drop(self) -> None:
        if self._client is not None:
            self.last_epoch = max(self.last_epoch, self._client.last_epoch)
            try:
                self._client.close()
            except Exception:
                pass
            self._client = None

    def _ensure_connected(self) -> ServeClient:
        if self._client is None:
            client = self._client_factory(
                self.host, self.port, tenant=self.tenant,
                timeout=self.timeout,
            )
            client.last_epoch = self.last_epoch
            self._client = client
            self.reconnects += 1
            if self._subscription is not None:
                # Heal the delta stream: the server backfills from
                # last_epoch or pushes a resync past the gap.
                (predicate,) = self._subscription
                client.subscribe(
                    predicate=predicate, from_epoch=self.last_epoch
                )
        return self._client

    def _spend_retry(self, error: Exception, hint_ms: int | None) -> None:
        """One unit off the budget, then the jittered backoff sleep."""
        if self.retries_left <= 0:
            raise RetryBudgetExhausted(self.retry_budget, error) from error
        attempt = self.retry_budget - self.retries_left
        self.retries_left -= 1
        delay = min(self.backoff_cap, self.backoff_base * (2 ** attempt))
        delay *= 0.5 + self._rng.random() / 2  # jitter in [0.5, 1.0]
        if hint_ms is not None:
            delay = max(delay, hint_ms / 1000.0)
        self.backoffs.append(delay)
        self._sleep(delay)

    def _call(self, op: str, *args, **kwargs):
        """Run one verb with reconnect/overload retries."""
        while True:
            try:
                client = self._ensure_connected()
                response = getattr(client, op)(*args, **kwargs)
                self.last_epoch = max(self.last_epoch, client.last_epoch)
                return response
            except ServeConnectionError as exc:
                self._drop()
                self._spend_retry(exc, None)
            except ServeError as exc:
                if exc.code != "overloaded":
                    raise
                self._spend_retry(exc, exc.retry_after_ms)

    def _new_rid(self) -> str:
        self._rid_count += 1
        return f"{self._rid_prefix}-{self._rid_count}"

    # -- verbs -------------------------------------------------------------

    def ping(self) -> dict:
        return self._call("ping")

    def query(self, bind: list | None = None, magic: bool = False) -> dict:
        return self._call("query", bind=bind, magic=magic)

    def insert(self, predicate: str, *rows: list) -> dict:
        # The rid is fixed *before* the first attempt: every retry
        # replays the same id, so a lost ack can never double-apply.
        return self._call(
            "insert", predicate, *rows, rid=self._new_rid()
        )

    def delete(self, predicate: str, *rows: list) -> dict:
        return self._call(
            "delete", predicate, *rows, rid=self._new_rid()
        )

    def subscribe(self, predicate: str | None = None) -> dict:
        response = self._call("subscribe", predicate=predicate)
        self._subscription = (predicate,)
        return response

    def unsubscribe(self) -> dict:
        self._subscription = None
        return self._call("unsubscribe")

    def stats(self) -> dict:
        return self._call("stats")

    def health(self) -> dict:
        return self._call("health")

    def shutdown(self) -> dict:
        return self._call("shutdown")

    def drain_events(self, count: int) -> list[dict]:
        """Collect ``count`` push events, surviving reconnects.

        After a drop the resubscribe (``from_epoch``) brings backfilled
        deltas or a ``resync``; both count toward ``count`` -- the
        caller distinguishes them by the ``event`` field.
        """
        collected: list[dict] = []
        while len(collected) < count:
            try:
                client = self._ensure_connected()
                collected.extend(
                    client.drain_events(count - len(collected))
                )
                self.last_epoch = max(self.last_epoch, client.last_epoch)
            except ServeConnectionError as exc:
                self._drop()
                self._spend_retry(exc, None)
        return collected
