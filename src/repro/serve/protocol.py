"""The ``repro serve`` wire protocol: newline-delimited JSON.

One request per line, one response per request, in order; push events
(subscription deltas) may be interleaved between responses but never
inside one.  Every message is a JSON object:

Requests
--------

``{"op": "ping"}``
    Liveness probe; the response carries the current view epoch.
``{"op": "query", "bind": [...], "magic": bool}``
    Answer the goal relation under a binding.  ``bind`` has one entry
    per goal argument -- a node label (a string or integer, bound) or
    ``null`` / ``"_"`` (free) -- and may be omitted for the all-free
    query.  With
    ``magic: false`` (default) the answer is a filter over the live
    materialized view; with ``magic: true`` the magic-sets rewrite is
    evaluated against the pinned EDB snapshot, deriving only the facts
    the binding demands.  Either way the response reports the **epoch
    the answer was computed at** -- reads are snapshot-consistent.
``{"op": "insert"|"delete", "predicate": P, "rows": [[...], ...]}``
    An EDB update (``"row": [...]`` is accepted for a single row).
    Updates from every client are serialised through the server's one
    writer task; each applied update bumps the view epoch by one and
    the response reports the new epoch.  An update may carry a
    client-supplied ``"rid"`` (a non-empty request-id string): with a
    write-ahead log enabled the server dedupes on it, so a retried
    update -- across reconnects *and* across server crashes -- is
    applied exactly once; the deduplicated response carries
    ``"deduped": true``.
``{"op": "subscribe", "predicate": P?, "from_epoch": N?}`` /
``{"op": "unsubscribe"}``
    Register for delta push events on an IDB predicate (default: the
    goal).  After every epoch bump the server pushes one event per
    subscription (see below).  A resubscribing client passes
    ``from_epoch`` (the last epoch it saw): the server backfills the
    missed deltas from its bounded history, or -- if the gap outruns
    the history -- pushes one ``resync`` event carrying the full
    current rows instead.
``{"op": "stats"}``
    Server observability: version, epoch, uptime, client counts, and
    per-verb latency quantiles (p50/p95/p99).
``{"op": "health"}``
    A cheap liveness/pressure probe: epoch, writer-queue depth and
    capacity, client count, and (when a WAL is enabled) the log's
    fsync mode and record counts.  Unlike ``stats`` it allocates
    nothing per verb and is safe to poll hot.
``{"op": "shutdown"}``
    Ask the server to stop cleanly (it responds first, then closes).

Every request may carry ``"id"`` (any JSON scalar, echoed verbatim in
the response) and ``"tenant"`` (a tenant name selecting the
:class:`~repro.guard.ResourceBudget` applied to evaluation-backed
queries).

Responses and events
--------------------

Success: ``{"ok": true, "op": ..., "id": ..., ...verb fields...}``.
Failure: ``{"ok": false, "id": ..., "error": {"code": ..., "message":
...}}`` -- the connection stays open; in particular a tripped tenant
budget is the structured code ``"budget_exceeded"``, not a dropped
connection, and a full writer queue is the structured code
``"overloaded"`` whose error object carries ``"retry_after_ms"`` (the
backoff hint :class:`~repro.serve.client.ResilientClient` honours).
Push events have no ``id``::

    {"event": "delta", "epoch": N, "predicate": P,
     "added": [[...], ...], "removed": [[...], ...]}

    {"event": "resync", "epoch": N, "predicate": P,
     "rows": [[...], ...], "reason": "gap"|"evicted"}

A ``resync`` event replaces the delta stream with the predicate's full
rows at ``epoch``: the server sends it when a resubscribe gap outruns
the delta history (``reason: "gap"``) or when a slow subscriber's
outbox overflowed and its queued deltas were dropped
(``reason: "evicted"``) -- either way the client swaps in the rows and
resumes delta-following from ``epoch``.

This module is pure data plumbing -- parsing, validation, and
serialisation -- shared by the server, the client, and the tests; it
imports nothing from the evaluation stack.
"""

from __future__ import annotations

import json
from typing import Mapping

#: Protocol revision, reported by ``stats``.  v2 added request ids on
#: updates (exactly-once dedupe), ``health``, ``from_epoch`` resubscribe
#: with ``resync`` events, and the ``overloaded`` error code.
PROTOCOL_VERSION = 2

#: Every request verb the server understands.
VERBS = (
    "ping",
    "query",
    "insert",
    "delete",
    "subscribe",
    "unsubscribe",
    "stats",
    "health",
    "shutdown",
)

#: Structured error codes a response may carry.
ERROR_CODES = (
    "parse_error",
    "bad_request",
    "unknown_op",
    "budget_exceeded",
    "maintenance_aborted",
    "overloaded",
    "shutting_down",
    "internal",
)


class ProtocolError(ValueError):
    """A malformed or invalid client message.

    ``code`` is one of :data:`ERROR_CODES`; the server turns the
    exception into a structured error response and keeps the
    connection open.  ``fields`` are extra key/values merged into the
    wire error object (e.g. ``retry_after_ms`` on ``overloaded``).
    """

    def __init__(self, code: str, message: str, **fields) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        self.code = code
        self.fields = fields
        super().__init__(message)


def encode(message: Mapping) -> bytes:
    """One protocol message as a JSON line (UTF-8, trailing newline)."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def _require_string(request: Mapping, field: str) -> str:
    value = request.get(field)
    if not isinstance(value, str) or not value:
        raise ProtocolError(
            "bad_request", f"{field!r} must be a non-empty string"
        )
    return value


def _normalize_rows(request: Mapping) -> list[tuple]:
    """The update rows of an insert/delete request, as tuples of strings."""
    if "row" in request and "rows" in request:
        raise ProtocolError(
            "bad_request", "give either 'row' or 'rows', not both"
        )
    if "row" in request:
        raw = [request["row"]]
    elif "rows" in request:
        raw = request["rows"]
    else:
        raise ProtocolError(
            "bad_request", "an update needs 'row' or 'rows'"
        )
    if not isinstance(raw, list) or not raw:
        raise ProtocolError("bad_request", "'rows' must be a non-empty list")
    rows = []
    for entry in raw:
        if not isinstance(entry, list) or not all(
            isinstance(x, (str, int)) and not isinstance(x, bool)
            for x in entry
        ):
            raise ProtocolError(
                "bad_request",
                f"each row must be a list of node labels (strings or "
                f"integers), got {entry!r}",
            )
        rows.append(tuple(entry))
    return rows


def _normalize_bind(request: Mapping) -> list[str | None] | None:
    """The goal binding of a query: node names bound, ``None`` free."""
    if "bind" not in request or request["bind"] is None:
        return None
    raw = request["bind"]
    if not isinstance(raw, list):
        raise ProtocolError("bad_request", "'bind' must be a list")
    entries: list = []
    for entry in raw:
        if entry is None or entry == "_":
            entries.append(None)
        elif (
            isinstance(entry, (str, int))
            and not isinstance(entry, bool)
            and entry != ""
        ):
            entries.append(entry)
        else:
            raise ProtocolError(
                "bad_request",
                "each 'bind' entry must be a node label (string or "
                f"integer), '_' or null; got {entry!r}",
            )
    return entries


def parse_request(line: str) -> dict:
    """Parse and validate one request line into a normalised dict.

    The result always has ``op``, ``id`` (possibly ``None``), and
    ``tenant`` (possibly ``None``); verb payloads are normalised --
    ``rows`` as tuples, ``bind`` as a list with ``None`` for free
    positions, ``magic``/``predicate`` defaulted.  Raises
    :class:`ProtocolError` on anything malformed.
    """
    line = line.strip()
    if not line:
        raise ProtocolError("parse_error", "empty request line")
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError("parse_error", f"invalid JSON: {exc}") from None
    if not isinstance(request, dict):
        raise ProtocolError(
            "parse_error", "a request must be a JSON object"
        )
    op = request.get("op")
    if not isinstance(op, str):
        raise ProtocolError("bad_request", "missing 'op' field")
    if op not in VERBS:
        raise ProtocolError(
            "unknown_op",
            f"unknown op {op!r} (choose from {', '.join(VERBS)})",
        )
    request_id = request.get("id")
    if request_id is not None and not isinstance(
        request_id, (str, int, float, bool)
    ):
        raise ProtocolError("bad_request", "'id' must be a JSON scalar")
    tenant = request.get("tenant")
    if tenant is not None and (not isinstance(tenant, str) or not tenant):
        raise ProtocolError(
            "bad_request", "'tenant' must be a non-empty string"
        )
    parsed: dict = {"op": op, "id": request_id, "tenant": tenant}
    if op == "query":
        magic = request.get("magic", False)
        if not isinstance(magic, bool):
            raise ProtocolError("bad_request", "'magic' must be a boolean")
        parsed["magic"] = magic
        parsed["bind"] = _normalize_bind(request)
    elif op in ("insert", "delete"):
        parsed["predicate"] = _require_string(request, "predicate")
        parsed["rows"] = _normalize_rows(request)
        rid = request.get("rid")
        if rid is not None and (not isinstance(rid, str) or not rid):
            raise ProtocolError(
                "bad_request", "'rid' must be a non-empty string"
            )
        parsed["rid"] = rid
    elif op == "subscribe":
        predicate = request.get("predicate")
        if predicate is not None:
            predicate = _require_string(request, "predicate")
        parsed["predicate"] = predicate
        from_epoch = request.get("from_epoch")
        if from_epoch is not None and (
            not isinstance(from_epoch, int)
            or isinstance(from_epoch, bool)
            or from_epoch < 0
        ):
            raise ProtocolError(
                "bad_request",
                "'from_epoch' must be a non-negative integer",
            )
        parsed["from_epoch"] = from_epoch
    return parsed


# ---------------------------------------------------------------------------
# Response / event constructors (the server's half of the contract).
# ---------------------------------------------------------------------------


def ok_response(op: str, request_id, **fields) -> dict:
    response = {"ok": True, "op": op, "id": request_id}
    response.update(fields)
    return response


def error_response(request_id, code: str, message: str, **fields) -> dict:
    if code not in ERROR_CODES:
        code = "internal"
    error = {"code": code, "message": message}
    error.update(fields)
    return {"ok": False, "id": request_id, "error": error}


def delta_event(
    epoch: int, predicate: str, added, removed
) -> dict:
    """The push message subscribers receive after an epoch bump."""
    return {
        "event": "delta",
        "epoch": epoch,
        "predicate": predicate,
        "added": sorted([list(row) for row in added]),
        "removed": sorted([list(row) for row in removed]),
    }


def resync_event(epoch: int, predicate: str, rows, reason: str) -> dict:
    """Full-rows replacement push: delta continuity was broken.

    ``reason`` is ``"gap"`` (a resubscribe's ``from_epoch`` fell off
    the server's delta history) or ``"evicted"`` (this subscriber's
    outbox overflowed and its queued deltas were dropped).  The client
    replaces its materialisation with ``rows`` (true at ``epoch``) and
    follows deltas from there.
    """
    return {
        "event": "resync",
        "epoch": epoch,
        "predicate": predicate,
        "rows": rows_payload(rows),
        "reason": reason,
    }


def rows_payload(rows) -> list[list]:
    """Answer rows in wire shape: sorted lists (deterministic order)."""
    return sorted([list(row) for row in rows])
