"""``repro.serve``: a concurrent query/update service over live views.

The serve subsystem turns the incremental-maintenance machinery of
:mod:`repro.datalog.incremental` into a long-running server: many
clients multiplex over **one** shared materialised view, reads are
snapshot-consistent (pinned to an epoch), writes are serialised
through a single writer task, and the view is durable -- a periodic
fingerprinted checkpoint plus a write-ahead log that records every
applied update *before* it is acknowledged, so a killed server resumes
bit-identically at the last acknowledged epoch.

Layers
------

:mod:`repro.serve.protocol`
    The newline-delimited JSON wire contract (verbs, validation,
    structured errors, ``resync`` events) -- pure data plumbing.
:mod:`repro.serve.view`
    :class:`LiveView` / :class:`ViewSnapshot`: epochs, pinned-snapshot
    query paths (view filter vs magic-sets re-derivation), and
    checkpoint/resume built on
    :class:`~repro.guard.MaintenanceCheckpoint`.
:mod:`repro.serve.wal`
    :class:`WriteAheadLog` / :func:`recover`: CRC-framed epoch-stamped
    append-before-ack records, torn-tail truncation, rotation at each
    checkpoint, and exactly-once recovery via the WAL-persisted dedupe
    table.
:mod:`repro.serve.server`
    :class:`ReproServer`: the asyncio event loop -- writer task, WAL
    integration, overload shedding (``overloaded`` +
    ``retry_after_ms``), slow-subscriber eviction, delta backfill,
    per-tenant budgets, latency stats, and the ``kill_server`` /
    ``wal_record`` / ``torn_wal`` crash drills.
:mod:`repro.serve.client`
    :class:`ServeClient` (a blocking reference client raising
    structured :class:`ServeConnectionError` on transport failures)
    and :class:`ResilientClient` (reconnect, seeded backoff + jitter,
    a draining retry budget, exactly-once update replay, resubscribe
    with epoch-gap recovery).

Entry point: ``repro serve PROG GRAPH --port N [--wal PATH]`` (see
:mod:`repro.cli`).
"""

from repro.serve.client import (
    ResilientClient,
    RetryBudgetExhausted,
    ServeClient,
    ServeConnectionError,
    ServeError,
)
from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError
from repro.serve.server import SERVE_ENGINES, ReproServer, ServeStats, run_server
from repro.serve.view import LiveView, ViewSnapshot, filter_rows
from repro.serve.wal import (
    FSYNC_MODES,
    RecoveryReport,
    WalCorrupt,
    WalError,
    WalMismatch,
    WalRecord,
    WriteAheadLog,
    recover,
    scan_wal,
)

__all__ = [
    "FSYNC_MODES",
    "PROTOCOL_VERSION",
    "SERVE_ENGINES",
    "LiveView",
    "ProtocolError",
    "RecoveryReport",
    "ReproServer",
    "ResilientClient",
    "RetryBudgetExhausted",
    "ServeClient",
    "ServeConnectionError",
    "ServeError",
    "ServeStats",
    "ViewSnapshot",
    "WalCorrupt",
    "WalError",
    "WalMismatch",
    "WalRecord",
    "WriteAheadLog",
    "filter_rows",
    "recover",
    "scan_wal",
    "run_server",
]
