"""``repro.serve``: a concurrent query/update service over live views.

The serve subsystem turns the incremental-maintenance machinery of
:mod:`repro.datalog.incremental` into a long-running server: many
clients multiplex over **one** shared materialised view, reads are
snapshot-consistent (pinned to an epoch), writes are serialised
through a single writer task, and the view checkpoints durably so a
killed server resumes where it left off.

Layers
------

:mod:`repro.serve.protocol`
    The newline-delimited JSON wire contract (verbs, validation,
    structured errors) -- pure data plumbing.
:mod:`repro.serve.view`
    :class:`LiveView` / :class:`ViewSnapshot`: epochs, pinned-snapshot
    query paths (view filter vs magic-sets re-derivation), and
    checkpoint/resume built on
    :class:`~repro.guard.MaintenanceCheckpoint`.
:mod:`repro.serve.server`
    :class:`ReproServer`: the asyncio event loop -- writer task,
    per-connection outboxes, subscriptions, per-tenant budgets,
    latency stats, checkpoint cadence and the ``kill_server`` drill.
:mod:`repro.serve.client`
    :class:`ServeClient`: a blocking reference client (tests, the E23
    load generator, CI smoke).

Entry point: ``repro serve PROG GRAPH --port N`` (see
:mod:`repro.cli`).
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError
from repro.serve.server import SERVE_ENGINES, ReproServer, ServeStats, run_server
from repro.serve.view import LiveView, ViewSnapshot, filter_rows

__all__ = [
    "PROTOCOL_VERSION",
    "SERVE_ENGINES",
    "LiveView",
    "ProtocolError",
    "ReproServer",
    "ServeClient",
    "ServeError",
    "ServeStats",
    "ViewSnapshot",
    "filter_rows",
    "run_server",
]
