"""File formats: graphs, DIMACS CNF, and Datalog(!=) program files.

* :func:`load_digraph` / :func:`dump_digraph` -- a line-based edge-list
  format with distinguished-node assignments;
* :func:`load_cnf` / :func:`dump_cnf` -- DIMACS CNF;
* :func:`load_program` / :func:`dump_program` -- Datalog(!=) source with
  a ``% goal: <predicate>`` directive.
"""

from repro.io.cnf_format import dump_cnf, load_cnf, loads_cnf
from repro.io.graph_format import dump_digraph, load_digraph, loads_digraph
from repro.io.program_format import dump_program, load_program, loads_program

__all__ = [
    "load_digraph",
    "loads_digraph",
    "dump_digraph",
    "load_cnf",
    "loads_cnf",
    "dump_cnf",
    "load_program",
    "loads_program",
    "dump_program",
]
