"""Datalog(!=) program files.

A program file is ordinary program text (see
:mod:`repro.datalog.parser`) carrying the goal predicate in a comment
directive::

    % goal: T
    T(x, y, w) :- E(x, y), w != x, w != y.
    T(x, y, w) :- E(x, z), T(z, y, w), w != x.
"""

from __future__ import annotations

import os
import re

from repro.datalog.ast import Program
from repro.datalog.parser import parse_program

_GOAL_RE = re.compile(r"^[%#]\s*goal\s*:\s*([A-Za-z_][A-Za-z0-9_']*)\s*$")


class ProgramFormatError(Exception):
    """Raised when the goal directive is missing or duplicated."""


def loads_program(text: str, goal: str | None = None) -> Program:
    """Parse program text; the goal comes from the directive unless
    overridden by the ``goal`` argument."""
    directive: str | None = None
    for line in text.splitlines():
        match = _GOAL_RE.match(line.strip())
        if match:
            if directive is not None:
                raise ProgramFormatError("multiple goal directives")
            directive = match.group(1)
    chosen = goal or directive
    if chosen is None:
        raise ProgramFormatError(
            "no '% goal: <predicate>' directive and no explicit goal"
        )
    return parse_program(text, goal=chosen)


def dump_program(program: Program) -> str:
    """Serialise a program with its goal directive; round-trips."""
    lines = [f"% goal: {program.goal}"]
    lines.extend(str(rule) for rule in program.rules)
    return "\n".join(lines) + "\n"


def load_program(path: str | os.PathLike, goal: str | None = None) -> Program:
    """Read a program file."""
    with open(path, encoding="utf-8") as handle:
        return loads_program(handle.read(), goal=goal)
