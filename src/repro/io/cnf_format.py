"""DIMACS CNF reading and writing.

Variables ``1..n`` map to names ``x1..xn``; negative literals are
negations; clauses are 0-terminated integer lists, and duplicate
occurrences inside a clause are preserved (the FHW reduction builds one
switch per occurrence).
"""

from __future__ import annotations

import os

from repro.cnf.formulas import Clause, CnfFormula, Literal


class DimacsError(Exception):
    """Raised on malformed DIMACS input."""


def loads_cnf(text: str) -> CnfFormula:
    """Parse DIMACS CNF text into a :class:`CnfFormula`."""
    clauses: list[Clause] = []
    pending: list[Literal] = []
    declared: tuple[int, int] | None = None
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith(("c", "%")):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise DimacsError(f"line {number}: malformed problem line")
            declared = (int(parts[2]), int(parts[3]))
            continue
        for token in line.split():
            try:
                value = int(token)
            except ValueError:
                raise DimacsError(
                    f"line {number}: non-integer token {token!r}"
                ) from None
            if value == 0:
                if not pending:
                    raise DimacsError(f"line {number}: empty clause")
                clauses.append(Clause(pending))
                pending = []
            else:
                pending.append(Literal(f"x{abs(value)}", value > 0))
    if pending:
        clauses.append(Clause(pending))  # tolerate a missing final 0
    if not clauses:
        raise DimacsError("no clauses found")
    if declared is not None and declared[1] != len(clauses):
        raise DimacsError(
            f"problem line declares {declared[1]} clauses, found {len(clauses)}"
        )
    return CnfFormula(clauses)


def dump_cnf(formula: CnfFormula) -> str:
    """Serialise a formula to DIMACS (variables renumbered x1.. order)."""
    index = {name: i + 1 for i, name in enumerate(formula.variables)}
    lines = [f"p cnf {len(index)} {len(formula.clauses)}"]
    for clause in formula.clauses:
        numbers = [
            index[lit.variable] if lit.positive else -index[lit.variable]
            for lit in clause.literals
        ]
        lines.append(" ".join(str(n) for n in numbers) + " 0")
    return "\n".join(lines) + "\n"


def load_cnf(path: str | os.PathLike) -> CnfFormula:
    """Read a DIMACS file."""
    with open(path, encoding="utf-8") as handle:
        return loads_cnf(handle.read())
