"""A line-based text format for directed graphs with distinguished nodes.

Format::

    # comments and blank lines are ignored
    node isolated_name          # declare a node with no edges
    edge tail head              # declare an edge (nodes auto-created)
    s1 = some_node              # distinguish a node under a name

Node names are whitespace-free tokens and are kept as strings.
"""

from __future__ import annotations

import os

from repro.graphs.digraph import DiGraph


class GraphFormatError(Exception):
    """Raised on malformed graph files, with line context."""


def loads_digraph(text: str) -> DiGraph:
    """Parse a graph from its textual representation."""
    nodes: list[str] = []
    edges: list[tuple[str, str]] = []
    distinguished: dict[str, str] = {}
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if "=" in line:
            name, __, target = line.partition("=")
            name, target = name.strip(), target.strip()
            if not name or not target:
                raise GraphFormatError(
                    f"line {number}: malformed distinguished assignment "
                    f"{raw.strip()!r}"
                )
            distinguished[name] = target
            continue
        parts = line.split()
        if parts[0] == "node" and len(parts) == 2:
            nodes.append(parts[1])
        elif parts[0] == "edge" and len(parts) == 3:
            edges.append((parts[1], parts[2]))
        else:
            raise GraphFormatError(
                f"line {number}: expected 'node <n>', 'edge <u> <v>' or "
                f"'<name> = <node>', got {raw.strip()!r}"
            )
    known = set(nodes) | {u for u, __ in edges} | {v for __, v in edges}
    for name, target in distinguished.items():
        if target not in known:
            raise GraphFormatError(
                f"distinguished node {name} = {target!r} never declared"
            )
    return DiGraph(nodes, edges, distinguished)


def dump_digraph(graph: DiGraph) -> str:
    """Serialise a graph; round-trips through :func:`loads_digraph` for
    graphs whose nodes are strings (other node types are repr-stringified
    and will not round-trip to the same objects)."""
    lines = []
    for node in sorted(graph.isolated_nodes(), key=repr):
        lines.append(f"node {_token(node)}")
    for u, v in sorted(graph.edges, key=repr):
        lines.append(f"edge {_token(u)} {_token(v)}")
    for name, node in sorted(graph.distinguished.items()):
        lines.append(f"{name} = {_token(node)}")
    return "\n".join(lines) + "\n"


def _token(node) -> str:
    text = node if isinstance(node, str) else repr(node)
    if any(ch.isspace() for ch in text) or "#" in text or "=" in text:
        raise GraphFormatError(
            f"node name {text!r} cannot be serialised (whitespace/#/=)"
        )
    return text


def load_digraph(path: str | os.PathLike) -> DiGraph:
    """Read a graph file."""
    with open(path, encoding="utf-8") as handle:
        return loads_digraph(handle.read())
