"""Graphviz DOT export for directed graphs.

Purely textual (no graphviz dependency): render the gadget graphs --
switches, ``G_phi``, certificates -- for inspection with any DOT viewer.
Distinguished nodes are drawn as labelled doublecircles; optional
highlighted paths (e.g. the standard paths of the reduction) get
coloured edges.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence

from repro.graphs.digraph import DiGraph

Node = Hashable

_PALETTE = ("red", "blue", "darkgreen", "orange", "purple", "brown")


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def to_dot(
    graph: DiGraph,
    name: str = "G",
    highlight_paths: Sequence[Sequence[Node]] = (),
    node_labels: Mapping[Node, str] | None = None,
) -> str:
    """Render the graph as a DOT digraph.

    Parameters
    ----------
    highlight_paths:
        Node sequences whose consecutive edges are coloured (cycling
        through a fixed palette) -- e.g. the two disjoint paths routed
        through ``G_phi``.
    node_labels:
        Optional display labels; defaults to ``str(node)``.
    """
    labels = node_labels or {}

    def label(node: Node) -> str:
        return labels.get(node, str(node))

    def ident(node: Node) -> str:
        return _quote(repr(node))

    colour_of: dict[tuple, str] = {}
    for index, path in enumerate(highlight_paths):
        colour = _PALETTE[index % len(_PALETTE)]
        for edge in zip(path, path[1:]):
            colour_of[edge] = colour

    lines = [f"digraph {_quote(name)} {{", "  rankdir=LR;"]
    distinguished = {node: dn for dn, node in graph.distinguished.items()}
    for node in sorted(graph.nodes, key=repr):
        attributes = [f"label={_quote(label(node))}"]
        if node in distinguished:
            attributes.append("shape=doublecircle")
            attributes.append(
                f"xlabel={_quote(distinguished[node])}"
            )
        lines.append(f"  {ident(node)} [{', '.join(attributes)}];")
    for u, v in sorted(graph.edges, key=repr):
        colour = colour_of.get((u, v))
        suffix = f" [color={colour}, penwidth=2]" if colour else ""
        lines.append(f"  {ident(u)} -> {ident(v)}{suffix};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def reduction_to_dot(instance, assignment: Mapping[str, bool] | None = None):
    """DOT for a reduction graph, optionally routing a model's paths."""
    paths: Iterable[Sequence[Node]] = ()
    if assignment is not None:
        paths = instance.build_disjoint_paths(assignment)
    return to_dot(
        instance.graph,
        name="G_phi",
        highlight_paths=tuple(paths),
    )
