"""Homomorphisms between finite structures.

The paper's games revolve around two kinds of maps (Definition 4.6):

* a **homomorphism** from A into B maps constants to corresponding
  constants and preserves every relation tuple;
* a **one-to-one homomorphism** is additionally injective.  (Note: unlike
  an embedding, it need *not* reflect relations -- only preserve them.)

Partial maps between A and B appear as the positions of the existential
k-pebble game; :func:`is_partial_one_to_one_homomorphism` decides whether a
position is still alive for Player II.

The exhaustive searches here are exponential and serve as ground truth on
small instances, mirroring how the paper uses brute-force reasoning only on
fixed patterns.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Mapping

from repro.structures.structure import Structure

Element = Hashable
PartialMap = Mapping[Element, Element]


def _constants_respected(mapping: PartialMap, a: Structure, b: Structure) -> bool:
    """Check h(c_j) = d_j for all constants (they must be in the map)."""
    a_consts = a.constant_elements()
    b_consts = b.constant_elements()
    for source, target in zip(a_consts, b_consts):
        if mapping.get(source, target) != target:
            return False
    return True


def _tuples_preserved(
    mapping: PartialMap, a: Structure, b: Structure, total_on: frozenset | None = None
) -> bool:
    """Check preservation of every relation tuple whose entries are mapped."""
    domain = set(mapping)
    for name in a.vocabulary.relation_names:
        b_relation = b.relation(name)
        for t in a.relation(name):
            if all(x in domain for x in t):
                image = tuple(mapping[x] for x in t)
                if image not in b_relation:
                    return False
    return True


def is_partial_homomorphism(
    mapping: PartialMap, a: Structure, b: Structure
) -> bool:
    """Whether ``mapping`` is a partial homomorphism from ``a`` to ``b``.

    The domain may be any subset of ``a``'s universe; only tuples fully
    inside the domain must be preserved.  Constants that appear in the
    domain must map to the corresponding constants of ``b``.
    """
    if a.vocabulary != b.vocabulary:
        raise ValueError("structures must share a vocabulary")
    if not all(x in a.universe for x in mapping):
        return False
    if not all(y in b.universe for y in mapping.values()):
        return False
    if not _constants_respected(mapping, a, b):
        return False
    # Constants are implicitly part of every partial map (Definition
    # 4.6: the domain always contains the constants of A).
    effective = dict(zip(a.constant_elements(), b.constant_elements()))
    effective.update(mapping)
    return _tuples_preserved(effective, a, b)


def is_partial_one_to_one_homomorphism(
    mapping: PartialMap, a: Structure, b: Structure
) -> bool:
    """Definition 4.6: a partial homomorphism that is also injective.

    This is the "alive position" test of the existential k-pebble game:
    Player I wins a round exactly when the pebbled correspondence fails
    this test.  Constants of the vocabulary are implicitly part of every
    position, so they are checked even when absent from ``mapping``.
    """
    if not is_partial_homomorphism(mapping, a, b):
        return False
    # Injectivity over the mapping plus the constant pairs.
    pairs = dict(zip(a.constant_elements(), b.constant_elements()))
    for source, target in mapping.items():
        existing = pairs.get(source)
        if existing is not None and existing != target:
            return False
        pairs[source] = target
    values = list(pairs.values())
    return len(set(values)) == len(values)


def is_homomorphism(mapping: PartialMap, a: Structure, b: Structure) -> bool:
    """Whether ``mapping`` is a (total) homomorphism from ``a`` into ``b``."""
    if set(mapping) != set(a.universe):
        return False
    return is_partial_homomorphism(mapping, a, b)


def is_one_to_one_homomorphism(
    mapping: PartialMap, a: Structure, b: Structure
) -> bool:
    """Whether ``mapping`` is a total injective homomorphism A -> B."""
    if set(mapping) != set(a.universe):
        return False
    return is_partial_one_to_one_homomorphism(mapping, a, b)


def extend_partial_map(
    mapping: PartialMap,
    source: Element,
    target: Element,
    a: Structure,
    b: Structure,
) -> dict | None:
    """Try to extend a partial one-to-one homomorphism by one pair.

    Returns the extended map if ``mapping ∪ {(source, target)}`` is still a
    partial one-to-one homomorphism, else ``None``.  This is the "forth"
    step of Definition 4.7.
    """
    if source in mapping:
        if mapping[source] == target:
            return dict(mapping)
        return None
    extended = dict(mapping)
    extended[source] = target
    if is_partial_one_to_one_homomorphism(extended, a, b):
        return extended
    return None


def _search(
    a: Structure,
    b: Structure,
    injective: bool,
    partial: dict,
    remaining: list,
) -> Iterator[dict]:
    """Backtracking enumeration of (injective) homomorphism extensions."""
    if not remaining:
        yield dict(partial)
        return
    source = remaining[0]
    used = set(partial.values()) if injective else frozenset()
    for target in b.universe:
        if injective and target in used:
            continue
        partial[source] = target
        if _tuples_preserved(partial, a, b):
            yield from _search(a, b, injective, partial, remaining[1:])
        del partial[source]


def _seed(a: Structure, b: Structure, injective: bool) -> dict | None:
    """Initial map sending constants to constants; None if that fails."""
    seed = dict(zip(a.constant_elements(), b.constant_elements()))
    if injective:
        values = list(seed.values())
        if len(set(values)) != len(values):
            return None
        if len(set(seed)) != len(seed.values()) and len(seed) != len(
            set(seed)
        ):  # pragma: no cover - defensive
            return None
    if not _tuples_preserved(seed, a, b):
        return None
    return seed


def find_homomorphisms(a: Structure, b: Structure) -> Iterator[dict]:
    """Enumerate all homomorphisms from ``a`` into ``b`` (exponential)."""
    if a.vocabulary != b.vocabulary:
        raise ValueError("structures must share a vocabulary")
    seed = _seed(a, b, injective=False)
    if seed is None:
        return
    remaining = [x for x in a.universe if x not in seed]
    yield from _search(a, b, False, seed, remaining)


def find_one_to_one_homomorphisms(a: Structure, b: Structure) -> Iterator[dict]:
    """Enumerate all one-to-one homomorphisms from ``a`` into ``b``."""
    if a.vocabulary != b.vocabulary:
        raise ValueError("structures must share a vocabulary")
    seed = _seed(a, b, injective=True)
    if seed is None:
        return
    # The constant seed must itself be injective.
    values = list(seed.values())
    if len(set(values)) != len(values):
        return
    remaining = [x for x in a.universe if x not in seed]
    yield from _search(a, b, True, seed, remaining)


def find_one_to_one_homomorphism(a: Structure, b: Structure) -> dict | None:
    """The first one-to-one homomorphism A -> B, or ``None``."""
    return next(find_one_to_one_homomorphisms(a, b), None)


def are_isomorphic(a: Structure, b: Structure) -> bool:
    """Isomorphism test via bidirectional injective homomorphism search.

    An isomorphism is an injective, surjective, relation-*reflecting*
    homomorphism; we realise it as a one-to-one homomorphism whose inverse
    is also one (sizes being equal makes both total bijections).
    """
    if a.vocabulary != b.vocabulary:
        raise ValueError("structures must share a vocabulary")
    if len(a) != len(b):
        return False
    for name in a.vocabulary.relation_names:
        if len(a.relation(name)) != len(b.relation(name)):
            return False
    for mapping in find_one_to_one_homomorphisms(a, b):
        inverse = {v: k for k, v in mapping.items()}
        if is_one_to_one_homomorphism(inverse, b, a):
            return True
    return False
