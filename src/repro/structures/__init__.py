"""Finite relational structures over finite vocabularies.

This subpackage is the model-theoretic substrate of the reproduction: the
paper's queries are Boolean queries on finite structures, its games are
played on pairs of structures, and its logics are evaluated on structures.

Public API
----------

* :class:`Vocabulary` -- relation symbols with arities plus constant symbols.
* :class:`Structure` -- a finite structure: universe, relations, constants.
* :func:`is_homomorphism` / :func:`is_one_to_one_homomorphism` -- mapping
  checks (Definition 4.6 of the paper).
* :func:`is_partial_one_to_one_homomorphism` -- the partial maps that make
  up Player II's winning-strategy families (Definition 4.7).
* :func:`find_homomorphisms` / :func:`find_one_to_one_homomorphism` --
  exhaustive searches used as ground truth on small instances.
* :func:`are_isomorphic` -- isomorphism via the injective search.
* :mod:`repro.structures.builders` -- conversions from graphs and common
  example structures.
"""

from repro.structures.homomorphism import (
    extend_partial_map,
    find_homomorphisms,
    find_one_to_one_homomorphism,
    find_one_to_one_homomorphisms,
    is_homomorphism,
    is_one_to_one_homomorphism,
    is_partial_homomorphism,
    is_partial_one_to_one_homomorphism,
    are_isomorphic,
)
from repro.structures.structure import Structure
from repro.structures.vocabulary import RelationSymbol, Vocabulary

__all__ = [
    "RelationSymbol",
    "Vocabulary",
    "Structure",
    "is_homomorphism",
    "is_one_to_one_homomorphism",
    "is_partial_homomorphism",
    "is_partial_one_to_one_homomorphism",
    "extend_partial_map",
    "find_homomorphisms",
    "find_one_to_one_homomorphism",
    "find_one_to_one_homomorphisms",
    "are_isomorphic",
]
