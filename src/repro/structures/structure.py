"""Finite relational structures.

A :class:`Structure` interprets every relation symbol of a
:class:`~repro.structures.vocabulary.Vocabulary` as a finite set of tuples
over its universe and every constant symbol as an element of the universe.
Structures are immutable once built; all "modifications" return new
structures.  Elements may be any hashable Python objects.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable, Mapping

from repro.structures.vocabulary import RelationSymbol, Vocabulary

Element = Hashable
Tuple_ = tuple


class Structure:
    """A finite structure over a finite vocabulary.

    Parameters
    ----------
    vocabulary:
        The structure's vocabulary.
    universe:
        The (finite) set of elements.  Every tuple in every relation and
        every constant interpretation must draw from this set.
    relations:
        Mapping from relation name to an iterable of tuples.  Relations of
        the vocabulary that are omitted are interpreted as empty.
    constants:
        Mapping from constant symbol to its interpreting element.  Every
        constant of the vocabulary must be interpreted.

    Examples
    --------
    >>> voc = Vocabulary.graph()
    >>> a = Structure(voc, {1, 2, 3}, {"E": [(1, 2), (2, 3)]})
    >>> a.holds("E", (1, 2))
    True
    >>> len(a)
    3
    """

    __slots__ = ("_vocabulary", "_universe", "_relations", "_constants", "_hash")

    def __init__(
        self,
        vocabulary: Vocabulary,
        universe: Iterable[Element],
        relations: Mapping[str, Iterable[tuple]] | None = None,
        constants: Mapping[str, Element] | None = None,
    ) -> None:
        universe_set = frozenset(universe)
        relations = relations or {}
        constants = constants or {}

        interp: dict[str, frozenset[tuple]] = {}
        for symbol in vocabulary.relations:
            tuples = frozenset(tuple(t) for t in relations.get(symbol.name, ()))
            for t in tuples:
                if len(t) != symbol.arity:
                    raise ValueError(
                        f"tuple {t} has wrong arity for {symbol}: "
                        f"expected {symbol.arity}, got {len(t)}"
                    )
                bad = [x for x in t if x not in universe_set]
                if bad:
                    raise ValueError(
                        f"tuple {t} of relation {symbol.name!r} mentions "
                        f"elements outside the universe: {bad}"
                    )
            interp[symbol.name] = tuples
        unknown = set(relations) - set(interp)
        if unknown:
            raise ValueError(
                f"relations not in the vocabulary: {sorted(unknown)}"
            )

        const_interp: dict[str, Element] = {}
        for name in vocabulary.constants:
            if name not in constants:
                raise ValueError(f"constant {name!r} left uninterpreted")
            value = constants[name]
            if value not in universe_set:
                raise ValueError(
                    f"constant {name!r} interpreted by {value!r}, which is "
                    "outside the universe"
                )
            const_interp[name] = value
        unknown_consts = set(constants) - set(const_interp)
        if unknown_consts:
            raise ValueError(
                f"constants not in the vocabulary: {sorted(unknown_consts)}"
            )

        self._vocabulary = vocabulary
        self._universe = universe_set
        self._relations = interp
        self._constants = const_interp
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def vocabulary(self) -> Vocabulary:
        """The structure's vocabulary."""
        return self._vocabulary

    @property
    def universe(self) -> frozenset:
        """The set of elements."""
        return self._universe

    @property
    def constants(self) -> Mapping[str, Element]:
        """Constant symbol interpretations, in vocabulary order."""
        return dict(self._constants)

    def constant_elements(self) -> tuple:
        """Interpretations of the constants, in vocabulary order."""
        return tuple(
            self._constants[name] for name in self._vocabulary.constants
        )

    def relation(self, name: str) -> frozenset[tuple]:
        """All tuples of relation ``name``."""
        return self._relations[name]

    def holds(self, name: str, arguments: tuple) -> bool:
        """Whether ``arguments`` is a tuple of relation ``name``."""
        return tuple(arguments) in self._relations[name]

    def __len__(self) -> int:
        return len(self._universe)

    def __contains__(self, element: object) -> bool:
        return element in self._universe

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------

    def induced(self, elements: Iterable[Element]) -> "Structure":
        """The substructure induced by ``elements``.

        The constants of the vocabulary must all lie inside ``elements``;
        this mirrors Definition 4.6, where partial maps always contain the
        constants.
        """
        subset = frozenset(elements)
        extra = subset - self._universe
        if extra:
            raise ValueError(f"elements not in the universe: {sorted(map(repr, extra))}")
        missing = [
            name
            for name, value in self._constants.items()
            if value not in subset
        ]
        if missing:
            raise ValueError(
                f"induced substructure must contain the constants; missing "
                f"interpretations of {missing}"
            )
        relations = {
            name: {t for t in tuples if all(x in subset for x in t)}
            for name, tuples in self._relations.items()
        }
        return Structure(self._vocabulary, subset, relations, self._constants)

    def rename(self, mapping: Callable[[Element], Element]) -> "Structure":
        """Apply an injective renaming to every element.

        Raises ``ValueError`` if ``mapping`` is not injective on the
        universe.
        """
        images: dict[Element, Element] = {}
        for element in self._universe:
            image = mapping(element)
            images[element] = image
        if len(set(images.values())) != len(images):
            raise ValueError("renaming is not injective on the universe")
        relations = {
            name: {tuple(images[x] for x in t) for t in tuples}
            for name, tuples in self._relations.items()
        }
        constants = {name: images[v] for name, v in self._constants.items()}
        return Structure(
            self._vocabulary, images.values(), relations, constants
        )

    def with_constants(self, assignment: Mapping[str, Element]) -> "Structure":
        """Expand the vocabulary with fresh constants interpreted as given."""
        vocabulary = self._vocabulary.with_constants(assignment.keys())
        constants = {**self._constants, **assignment}
        return Structure(vocabulary, self._universe, self._relations, constants)

    def reduct(self, vocabulary: Vocabulary) -> "Structure":
        """Forget symbols: the reduct of this structure to ``vocabulary``."""
        for symbol in vocabulary.relations:
            if (
                not self._vocabulary.has_relation(symbol.name)
                or self._vocabulary.arity(symbol.name) != symbol.arity
            ):
                raise ValueError(f"{symbol} is not interpreted here")
        for name in vocabulary.constants:
            if name not in self._constants:
                raise ValueError(f"constant {name!r} is not interpreted here")
        relations = {
            symbol.name: self._relations[symbol.name]
            for symbol in vocabulary.relations
        }
        constants = {name: self._constants[name] for name in vocabulary.constants}
        return Structure(vocabulary, self._universe, relations, constants)

    def disjoint_union(self, other: "Structure") -> "Structure":
        """Disjoint union, tagging elements with 0 / 1.

        Only available when neither vocabulary has constants (a constant
        cannot be interpreted twice).
        """
        if self._vocabulary.constants or other._vocabulary.constants:
            raise ValueError("disjoint union undefined for vocabularies with constants")
        if self._vocabulary != other._vocabulary:
            raise ValueError("vocabulary mismatch in disjoint union")
        left = self.rename(lambda x: (0, x))
        right = other.rename(lambda x: (1, x))
        relations = {
            name: left.relation(name) | right.relation(name)
            for name in self._vocabulary.relation_names
        }
        return Structure(
            self._vocabulary, left.universe | right.universe, relations
        )

    # ------------------------------------------------------------------
    # Equality / hashing / display
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Structure):
            return NotImplemented
        return (
            self._vocabulary == other._vocabulary
            and self._universe == other._universe
            and self._relations == other._relations
            and self._constants == other._constants
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (
                    self._vocabulary,
                    self._universe,
                    tuple(sorted(
                        (name, tuples)
                        for name, tuples in self._relations.items()
                    )),
                    tuple(sorted(self._constants.items())),
                )
            )
        return self._hash

    def __repr__(self) -> str:
        sizes = ", ".join(
            f"{name}:{len(tuples)}" for name, tuples in self._relations.items()
        )
        consts = (
            f", constants={self._constants}" if self._constants else ""
        )
        return f"Structure(|A|={len(self._universe)}, {sizes}{consts})"

    def describe(self) -> str:
        """A full, deterministic textual rendering (for debugging/tests)."""

        def key(x: Any) -> str:
            return repr(x)

        lines = [f"universe: {sorted(self._universe, key=key)}"]
        for name in sorted(self._relations):
            tuples = sorted(self._relations[name], key=key)
            lines.append(f"{name}: {tuples}")
        for name in self._vocabulary.constants:
            lines.append(f"{name} = {self._constants[name]!r}")
        return "\n".join(lines)
