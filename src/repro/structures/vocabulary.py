"""Vocabularies: finite sets of relation symbols and constant symbols.

The paper's Proviso (Section 3) restricts attention to finite vocabularies;
we enforce that by construction.  A vocabulary is immutable and hashable so
it can key caches and be shared between the two structures of a pebble game.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping


@dataclass(frozen=True, order=True)
class RelationSymbol:
    """A relation symbol with a fixed arity.

    Parameters
    ----------
    name:
        The symbol's name, e.g. ``"E"`` for graph edges.
    arity:
        Number of argument positions; must be positive.
    """

    name: str
    arity: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("relation symbol name must be non-empty")
        if self.arity < 1:
            raise ValueError(
                f"relation symbol {self.name!r} must have positive arity, "
                f"got {self.arity}"
            )

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"


class Vocabulary:
    """A finite relational vocabulary with optional constant symbols.

    Instances are immutable.  Two vocabularies are equal iff they have the
    same relation symbols (name and arity) and the same constant symbols in
    the same order; constant order matters because the pebble games of
    Definition 4.3 pair the i-th constants of the two structures.

    Examples
    --------
    >>> graphs = Vocabulary.graph()
    >>> graphs.arity("E")
    2
    >>> with_sources = Vocabulary.graph(constants=("s", "t"))
    >>> with_sources.constants
    ('s', 't')
    """

    __slots__ = ("_relations", "_constants", "_hash")

    def __init__(
        self,
        relations: Iterable[RelationSymbol] | Mapping[str, int],
        constants: Iterable[str] = (),
    ) -> None:
        if isinstance(relations, Mapping):
            symbols = tuple(
                RelationSymbol(name, arity) for name, arity in relations.items()
            )
        else:
            symbols = tuple(relations)
        by_name: dict[str, RelationSymbol] = {}
        for symbol in symbols:
            existing = by_name.get(symbol.name)
            if existing is not None and existing != symbol:
                raise ValueError(
                    f"conflicting arities for relation {symbol.name!r}: "
                    f"{existing.arity} and {symbol.arity}"
                )
            by_name[symbol.name] = symbol
        constant_tuple = tuple(constants)
        if len(set(constant_tuple)) != len(constant_tuple):
            raise ValueError(f"duplicate constant symbols in {constant_tuple}")
        overlap = set(by_name) & set(constant_tuple)
        if overlap:
            raise ValueError(
                f"symbols used both as relations and constants: {sorted(overlap)}"
            )
        object.__setattr__(self, "_relations", dict(sorted(by_name.items())))
        object.__setattr__(self, "_constants", constant_tuple)
        object.__setattr__(
            self,
            "_hash",
            hash((tuple(self._relations.values()), constant_tuple)),
        )

    @classmethod
    def graph(cls, constants: Iterable[str] = ()) -> "Vocabulary":
        """The vocabulary of directed graphs: one binary relation ``E``."""
        return cls([RelationSymbol("E", 2)], constants)

    @property
    def relations(self) -> tuple[RelationSymbol, ...]:
        """All relation symbols, sorted by name."""
        return tuple(self._relations.values())

    @property
    def relation_names(self) -> tuple[str, ...]:
        """Names of all relation symbols, sorted."""
        return tuple(self._relations)

    @property
    def constants(self) -> tuple[str, ...]:
        """The constant symbols, in declaration order."""
        return self._constants

    def arity(self, name: str) -> int:
        """Arity of the relation symbol ``name``; KeyError if absent."""
        return self._relations[name].arity

    def has_relation(self, name: str) -> bool:
        """Whether ``name`` is a relation symbol of this vocabulary."""
        return name in self._relations

    def has_constant(self, name: str) -> bool:
        """Whether ``name`` is a constant symbol of this vocabulary."""
        return name in self._constants

    def with_constants(self, constants: Iterable[str]) -> "Vocabulary":
        """A copy of this vocabulary with ``constants`` appended."""
        return Vocabulary(self.relations, self._constants + tuple(constants))

    def extend(self, relations: Iterable[RelationSymbol]) -> "Vocabulary":
        """A copy of this vocabulary with extra relation symbols.

        Used to extend an EDB vocabulary with a program's IDB predicates.
        """
        return Vocabulary(self.relations + tuple(relations), self._constants)

    def __iter__(self) -> Iterator[RelationSymbol]:
        return iter(self._relations.values())

    def __contains__(self, name: object) -> bool:
        return name in self._relations or name in self._constants

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vocabulary):
            return NotImplemented
        return (
            self._relations == other._relations
            and self._constants == other._constants
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        rels = ", ".join(str(symbol) for symbol in self._relations.values())
        if self._constants:
            return f"Vocabulary({{{rels}}}, constants={self._constants})"
        return f"Vocabulary({{{rels}}})"
