"""The class C of pattern graphs and its complement (Section 6).

C consists of all directed graphs with a distinguished node (the *root*)
such that either the root is the head of every edge, or the root is the
tail of every edge (a self-loop counts as both).  FHW showed the
H-subgraph homeomorphism query is polynomial for H in C and NP-complete
for H in the complement; the paper re-proves the dichotomy in terms of
Datalog(!=) expressibility.

The complement is characterised (Section 6.2) as the graphs containing at
least one of:

* ``H1`` -- two disjoint edges (four distinct nodes);
* ``H2`` -- a path of length 2 through three distinct nodes;
* ``H3`` -- a cycle of length 2.

:func:`complement_witness` finds such a witness subgraph;
:func:`classify_pattern` packages the whole dichotomy decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.graphs.digraph import DiGraph

Node = Hashable

#: Names of the three minimal obstructions to class-C membership.
H1 = "H1"
H2 = "H2"
H3 = "H3"


def pattern_h1() -> DiGraph:
    """H1: two disjoint edges on four distinct nodes."""
    return DiGraph(edges=[("s1", "s2"), ("s3", "s4")])


def pattern_h2() -> DiGraph:
    """H2: a directed path of length 2 through three distinct nodes."""
    return DiGraph(edges=[("s1", "s2"), ("s2", "s3")])


def pattern_h3() -> DiGraph:
    """H3: a directed cycle of length 2."""
    return DiGraph(edges=[("s1", "s2"), ("s2", "s1")])


@dataclass(frozen=True)
class ClassCMembership:
    """Evidence for H's membership in C (or the reason it fails).

    Attributes
    ----------
    in_class_c:
        Whether H (isolated nodes stripped) belongs to C.
    root:
        A witnessing root node when ``in_class_c``.
    orientation:
        ``"out"`` if the root is the tail of every edge, ``"in"`` if the
        head of every edge; ``"both"`` when H is a single self-loop.
    has_self_loop:
        Whether the root carries a self-loop.
    obstruction:
        When not in C: which of H1 / H2 / H3 occurs as a subgraph,
        together with the witnessing nodes.
    """

    in_class_c: bool
    root: Node | None = None
    orientation: str | None = None
    has_self_loop: bool = False
    obstruction: tuple[str, tuple] | None = None


def _root_candidates(pattern: DiGraph) -> list[tuple[Node, str]]:
    """All (root, orientation) witnesses for membership in C."""
    witnesses: list[tuple[Node, str]] = []
    edges = pattern.edges
    if not edges:
        return witnesses
    for node in sorted(pattern.nodes, key=repr):
        if all(u == node for u, __ in edges):
            if all(v == node for __, v in edges):
                witnesses.append((node, "both"))
            else:
                witnesses.append((node, "out"))
        elif all(v == node for __, v in edges):
            witnesses.append((node, "in"))
    return witnesses


def is_in_class_c(pattern: DiGraph) -> bool:
    """Whether the pattern (isolated nodes ignored) belongs to class C.

    Patterns with no edges at all are vacuously in C only if they are
    empty after stripping isolated nodes; the paper assumes patterns have
    no isolated nodes, and an edgeless pattern defines a trivial query.
    """
    stripped = pattern.without_isolated_nodes()
    if not stripped.edges:
        return True
    return bool(_root_candidates(stripped))


def complement_witness(pattern: DiGraph) -> tuple[str, tuple] | None:
    """An H1 / H2 / H3 subgraph of the pattern, or ``None``.

    Returns ``(kind, nodes)`` where ``nodes`` lists the witnessing nodes
    in the obstruction's own order.  The paper's characterisation says
    this returns ``None`` exactly when the (isolated-node-free) pattern
    is in C -- a fact the test suite verifies exhaustively on small
    patterns.
    """
    edges = sorted(pattern.edges, key=repr)
    # H3: a 2-cycle.
    for u, v in edges:
        if u != v and (v, u) in pattern.edges:
            return (H3, (u, v))
    # H2: a path of length 2 through distinct nodes.
    for u, v in edges:
        if u == v:
            continue
        for w in sorted(pattern.successors(v), key=repr):
            if w not in (u, v):
                return (H2, (u, v, w))
    # H1: two node-disjoint edges.  Self-loops count as edges here: a
    # loop plus a node-disjoint edge is outside C yet contains neither
    # the four-distinct-node H1 nor H2 nor H3, so the characterisation
    # only closes once loops are admitted (the corresponding
    # homeomorphism query is a disjoint cycle-plus-path query, NP-hard
    # by the same FHW construction).
    for index, (u, v) in enumerate(edges):
        for x, y in edges[index + 1:]:
            if {u, v} & {x, y}:
                continue
            return (H1, (u, v, x, y))
    return None


def classify_pattern(pattern: DiGraph) -> ClassCMembership:
    """The full dichotomy decision for a pattern graph.

    Either produces a class-C witness (root + orientation + self-loop
    flag), from which :func:`repro.datalog.homeo.class_c_program` builds
    the Datalog(!=) program of Theorem 6.1, or an obstruction witness,
    for which Theorem 6.7 shows inexpressibility in ``L^omega``.
    """
    stripped = pattern.without_isolated_nodes()
    witnesses = _root_candidates(stripped)
    if stripped.edges and not witnesses:
        obstruction = complement_witness(stripped)
        if obstruction is None:  # pragma: no cover - contradicts FHW
            raise AssertionError(
                "pattern outside C without an H1/H2/H3 witness; this "
                "contradicts the FHW characterisation"
            )
        return ClassCMembership(in_class_c=False, obstruction=obstruction)
    if not stripped.edges:
        return ClassCMembership(in_class_c=True, root=None, orientation=None)
    root, orientation = witnesses[0]
    return ClassCMembership(
        in_class_c=True,
        root=root,
        orientation=orientation,
        has_self_loop=(root, root) in stripped.edges,
    )
