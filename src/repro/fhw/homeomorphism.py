"""Homeomorphic embedding of a fixed pattern graph.

``H`` is *homeomorphic to the distinguished subgraph* of ``G`` when the
edges of H map to pairwise node-disjoint simple paths of G between the
corresponding distinguished nodes (Section 6, opening definition).

Two checkers are provided:

* :func:`homeomorphism_embedding` -- exact backtracking search over
  node-disjoint simple paths; exponential, used as ground truth (the
  problem is NP-complete for patterns outside C);
* :func:`homeomorphic_via_flow` -- the FHW polynomial algorithm for
  patterns in class C, via max flow (Menger), exactly the reduction that
  Theorem 6.1 turns into a Datalog(!=) program.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.flow.disjoint_paths import has_node_disjoint_paths_to_targets
from repro.fhw.pattern_class import classify_pattern
from repro.graphs.digraph import DiGraph
from repro.graphs.paths import node_disjoint_simple_paths

Node = Hashable


def _check_assignment(
    pattern: DiGraph, graph: DiGraph, assignment: Mapping[Node, Node]
) -> DiGraph:
    """Validate the node assignment and return the stripped pattern."""
    stripped = pattern.without_isolated_nodes()
    missing = stripped.nodes - set(assignment)
    if missing:
        raise ValueError(
            f"assignment misses pattern nodes: {sorted(map(repr, missing))}"
        )
    images = [assignment[v] for v in stripped.nodes]
    if len(set(images)) != len(images):
        raise ValueError("assignment must be injective on pattern nodes")
    outside = [g for g in images if g not in graph]
    if outside:
        raise ValueError(
            f"assignment targets outside the graph: {sorted(map(repr, outside))}"
        )
    return stripped


def homeomorphism_embedding(
    pattern: DiGraph, graph: DiGraph, assignment: Mapping[Node, Node]
) -> tuple[tuple, ...] | None:
    """An explicit embedding (one simple path per pattern edge) or None.

    Exact but exponential; the returned paths are pairwise node-disjoint
    (endpoints may coincide where pattern edges share nodes) and path i
    realises the i-th edge of ``sorted(pattern.edges, key=repr)``.
    """
    stripped = _check_assignment(pattern, graph, assignment)
    pairs = [
        (assignment[u], assignment[v])
        for u, v in sorted(stripped.edges, key=repr)
    ]
    return node_disjoint_simple_paths(graph, pairs)


def is_homeomorphic_to_distinguished_subgraph(
    pattern: DiGraph, graph: DiGraph, assignment: Mapping[Node, Node]
) -> bool:
    """Exact decision: is H homeomorphic to the distinguished subgraph?"""
    return homeomorphism_embedding(pattern, graph, assignment) is not None


def homeomorphic_via_flow(
    pattern: DiGraph, graph: DiGraph, assignment: Mapping[Node, Node]
) -> bool:
    """FHW's polynomial algorithm for patterns in class C.

    Reduces the question to "can the root push k units of node-capacity-1
    flow to its neighbours?", handling the self-loop case by guessing the
    cycle's re-entry node (a polynomial number of candidates).  Raises
    ``ValueError`` for patterns outside C, where no polynomial algorithm
    is known (and, by Theorem 6.7, no Datalog(!=) program exists).
    """
    stripped = _check_assignment(pattern, graph, assignment)
    membership = classify_pattern(stripped)
    if not membership.in_class_c:
        raise ValueError(
            "flow algorithm only applies to patterns in class C; "
            f"obstruction: {membership.obstruction}"
        )
    if membership.root is None:  # edgeless pattern: trivially embeds
        return True

    root = membership.root
    if membership.orientation == "in":
        working = graph.reverse()
        oriented = stripped.reverse()
    else:
        working = graph
        oriented = stripped

    source = assignment[root]
    neighbours = sorted(
        (v for v in oriented.successors(root) if v != root), key=repr
    )
    targets = [assignment[v] for v in neighbours]
    distinguished = {assignment[v] for v in stripped.nodes}

    if not membership.has_self_loop:
        return has_node_disjoint_paths_to_targets(working, source, targets)

    # Self-loop: the loop edge maps to a simple cycle through the root,
    # node-disjoint (except at the root) from the other k paths.
    if working.has_edge(source, source):
        if not targets:
            return True
        if has_node_disjoint_paths_to_targets(working, source, targets):
            return True
    for candidate in sorted(working.predecessors(source), key=repr):
        if candidate == source or candidate in distinguished:
            continue
        if has_node_disjoint_paths_to_targets(
            working, source, [*targets, candidate]
        ):
            return True
    return False
