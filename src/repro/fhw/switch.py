"""The switch gadget of Figure 1, reconstructed and machine-verified.

The supplied paper text names the switch's six distinguished passing
paths but not the figure itself, so the gadget here is *defined as* the
union of those six paths (plus the terminal attachment edges forced by
their endpoints)::

    p(c,a):  5 -> 4 -> 3 -> 2 -> 1
    p(b,d):  6' -> 2' -> 7 -> 9 -> 12
    p(e,f):  8' -> 9' -> 10' -> 4' -> 11'
    q(c,a):  5' -> 4' -> 3' -> 2' -> 1'
    q(b,d):  6 -> 2 -> 7' -> 9' -> 12'
    q(g,h):  8 -> 9 -> 10 -> 4 -> 11

with terminals ``a..h`` attached so that b, c, e, g are the in-degree-0
entries and a, d, f, h the out-degree-0 exits.  The p-paths are pairwise
node-disjoint, the q-paths likewise, and every p/q crossing shares a node
(2, 2', 4, 4', 9 or 9') -- which is the whole mechanism of Lemma 6.4.

:func:`check_switch_lemma` verifies Lemma 6.4 exhaustively on the
reconstruction (every disjoint passing pair with one path from b and one
into a is a matched p- or q-pair, and the third disjoint passing path is
unique), plus the equal-length properties Theorem 6.6 relies on.  Any
graph passing these checks is behaviourally interchangeable with FHW's
original figure for both the reduction and the games (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator

from repro.graphs.digraph import DiGraph
from repro.graphs.paths import all_simple_paths

Node = Hashable

#: Interior label sequences of the six named passing paths.
_PATH_LABELS = {
    "p_ca": ("5", "4", "3", "2", "1"),
    "p_bd": ("6'", "2'", "7", "9", "12"),
    "p_ef": ("8'", "9'", "10'", "4'", "11'"),
    "q_ca": ("5'", "4'", "3'", "2'", "1'"),
    "q_bd": ("6", "2", "7'", "9'", "12'"),
    "q_gh": ("8", "9", "10", "4", "11"),
}

#: Entry/exit terminals of each named path.
_PATH_TERMINALS = {
    "p_ca": ("c", "a"),
    "p_bd": ("b", "d"),
    "p_ef": ("e", "f"),
    "q_ca": ("c", "a"),
    "q_bd": ("b", "d"),
    "q_gh": ("g", "h"),
}

TERMINALS = ("a", "b", "c", "d", "e", "f", "g", "h")


@dataclass(frozen=True)
class SwitchPaths:
    """The six named passing paths of a switch, as full node tuples."""

    p_ca: tuple
    p_bd: tuple
    p_ef: tuple
    q_ca: tuple
    q_bd: tuple
    q_gh: tuple

    def named(self) -> dict[str, tuple]:
        """Mapping from path name to node tuple."""
        return {
            "p_ca": self.p_ca,
            "p_bd": self.p_bd,
            "p_ef": self.p_ef,
            "q_ca": self.q_ca,
            "q_bd": self.q_bd,
            "q_gh": self.q_gh,
        }


class Switch:
    """One switch instance, with nodes tagged by a switch identifier.

    Every node is the pair ``(tag, label)`` where the label is one of
    ``"1"``..``"12"``, ``"1'"``..``"12'"``, or a terminal letter.
    """

    __slots__ = ("tag",)

    def __init__(self, tag: Hashable) -> None:
        self.tag = tag

    def node(self, label: str) -> tuple:
        """The node carrying ``label`` in this switch."""
        return (self.tag, label)

    def terminal(self, letter: str) -> tuple:
        """One of the eight terminals a..h."""
        if letter not in TERMINALS:
            raise ValueError(f"unknown terminal {letter!r}")
        return (self.tag, letter)

    def interior(self, path_name: str) -> tuple:
        """The five interior nodes of a named path, in order."""
        return tuple(self.node(label) for label in _PATH_LABELS[path_name])

    def full_path(self, path_name: str) -> tuple:
        """A named path including its entry and exit terminals."""
        entry, exit_ = _PATH_TERMINALS[path_name]
        return (
            self.terminal(entry),
            *self.interior(path_name),
            self.terminal(exit_),
        )

    def paths(self) -> SwitchPaths:
        """All six named passing paths (with terminals)."""
        return SwitchPaths(**{
            name: self.full_path(name) for name in _PATH_LABELS
        })

    def edges(self) -> frozenset:
        """All edges of the switch: the union of the six named paths."""
        result: set = set()
        for name in _PATH_LABELS:
            path = self.full_path(name)
            result.update(zip(path, path[1:]))
        return frozenset(result)

    def nodes(self) -> frozenset:
        """All nodes of the switch."""
        result: set = set()
        for u, v in self.edges():
            result.add(u)
            result.add(v)
        return frozenset(result)

    def graph(self) -> DiGraph:
        """The standalone switch as a directed graph."""
        return DiGraph(edges=self.edges())


def build_switch(tag: Hashable = 0) -> Switch:
    """Create a switch instance whose nodes are tagged by ``tag``."""
    return Switch(tag)


# ---------------------------------------------------------------------------
# Lemma 6.4 verification
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SwitchLemmaReport:
    """Outcome of checking Lemma 6.4 on a reconstructed switch.

    All fields must be true for the gadget to be a faithful stand-in for
    Figure 1; ``holds`` aggregates them.
    """

    named_paths_pass_through: bool
    p_family_disjoint: bool
    q_family_disjoint: bool
    crossings_intersect: bool
    pair_condition: bool
    third_path_unique: bool
    equal_lengths: bool

    @property
    def holds(self) -> bool:
        """Whether every Lemma 6.4 property was verified."""
        return all(
            (
                self.named_paths_pass_through,
                self.p_family_disjoint,
                self.q_family_disjoint,
                self.crossings_intersect,
                self.pair_condition,
                self.third_path_unique,
                self.equal_lengths,
            )
        )


def passing_paths(switch: Switch) -> Iterator[tuple]:
    """All simple paths through the switch from an entry to an exit.

    "Passing through" = starting at an in-degree-0 node and ending at an
    out-degree-0 node (the paper's definition).
    """
    graph = switch.graph()
    sources = sorted(graph.sources(), key=repr)
    sinks = sorted(graph.sinks(), key=repr)
    for source in sources:
        for sink in sinks:
            yield from all_simple_paths(graph, source, sink)


def _strictly_disjoint(first: tuple, second: tuple) -> bool:
    return not (set(first) & set(second))


def check_switch_lemma(switch: Switch) -> SwitchLemmaReport:
    """Exhaustively verify the Lemma 6.4 properties of a switch."""
    named = switch.paths().named()
    through = list(passing_paths(switch))
    through_set = set(through)

    named_ok = all(path in through_set for path in named.values())

    p_family = [named["p_ca"], named["p_bd"], named["p_ef"]]
    q_family = [named["q_ca"], named["q_bd"], named["q_gh"]]

    def family_disjoint(family: list) -> bool:
        return all(
            _strictly_disjoint(x, y)
            for i, x in enumerate(family)
            for y in family[i + 1:]
        )

    # The brand-coupling crossings: each of these p/q pairs must share an
    # interior node, so a simple path (or disjoint pair) can never mix
    # brands within one switch.  (p_ef and q_gh are allowed to be
    # disjoint -- their exclusion is mediated through the b..d segment.)
    coupling = [
        ("p_ca", "q_bd"),
        ("p_ca", "q_gh"),
        ("p_bd", "q_ca"),
        ("p_bd", "q_gh"),
        ("p_ef", "q_ca"),
        ("p_ef", "q_bd"),
    ]
    crossings = all(
        set(switch.interior(p)) & set(switch.interior(q))
        for p, q in coupling
    )

    a = switch.terminal("a")
    b = switch.terminal("b")

    pair_ok = True
    third_ok = True
    for ending_at_a in through:
        if ending_at_a[-1] != a:
            continue
        for starting_at_b in through:
            if starting_at_b[0] != b:
                continue
            if not _strictly_disjoint(ending_at_a, starting_at_b):
                continue
            # Lemma 6.4, first part: the pair is a matched p- or q-pair.
            if ending_at_a == named["p_ca"] and starting_at_b == named["p_bd"]:
                brand = "p"
            elif (
                ending_at_a == named["q_ca"]
                and starting_at_b == named["q_bd"]
            ):
                brand = "q"
            else:
                pair_ok = False
                continue
            # Second part: exactly one disjoint third passing path.
            used = set(ending_at_a) | set(starting_at_b)
            thirds = [
                path
                for path in through
                if not (set(path) & used)
            ]
            expected = named["p_ef"] if brand == "p" else named["q_gh"]
            if thirds != [expected] and set(thirds) != {expected}:
                third_ok = False

    lengths_ok = (
        len(named["p_ca"]) == len(named["q_ca"])
        and len(named["p_bd"]) == len(named["q_bd"])
        and len(named["p_ef"]) == len(named["q_gh"])
    )

    return SwitchLemmaReport(
        named_paths_pass_through=named_ok,
        p_family_disjoint=family_disjoint(p_family),
        q_family_disjoint=family_disjoint(q_family),
        crossings_intersect=crossings,
        pair_condition=pair_ok,
        third_path_unique=third_ok,
        equal_lengths=lengths_ok,
    )
