"""The SAT -> two-disjoint-paths reduction ``phi |-> G_phi`` (Section 6.2).

Build, from a CNF formula phi, the graph ``G_phi`` with distinguished
nodes ``s1, s2, s3, s4`` such that::

    phi is satisfiable
        <=>  G_phi contains node-disjoint simple paths s1 -> s2, s3 -> s4

following the paper's prose for Figures 2-6:

* one switch per literal occurrence, chained via ``d_i -> b_{i+1}`` and
  ``a_{i+1} -> c_i``;
* one building block per variable: two columns (one per literal) whose
  vertical edges are the ``q(g, h)`` paths of that literal's switches;
* one clause block ``n_0 .. n_l`` whose ``n_{j-1} -> n_j`` segments are
  the ``p(e, f)`` paths of clause j's switches;
* the linking edges of construction steps 3-4.

:class:`ReductionInstance` also exposes the *standard paths* of the
Theorem 6.6 proof as slot sequences: every position along a standard
path is either a fixed node (terminals, block joints, clause nodes) or a
choice slot resolved per switch brand / column / clause occurrence --
exactly the correspondence Player II's strategy uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Union

from repro.cnf.formulas import CnfFormula, Literal
from repro.fhw.switch import Switch
from repro.graphs.digraph import DiGraph

Node = Hashable


@dataclass(frozen=True)
class FixedSlot:
    """A standard-path position occupied by the same node in every
    standard path (terminals a/b/c/d, block joints, n_j, s-nodes)."""

    node: Node


@dataclass(frozen=True)
class SwitchSegmentSlot:
    """An interior position of a switch's c..a or b..d section.

    Resolved to the ``offset``-th interior node of ``p(c,a)`` / ``q(c,a)``
    (kind ``"ca"``) or ``p(b,d)`` / ``q(b,d)`` (kind ``"bd"``) of switch
    ``switch_index``, depending on the brand chosen for that switch.
    """

    kind: str
    switch_index: int
    offset: int  # 0..4


@dataclass(frozen=True)
class ColumnSlot:
    """A position inside variable ``variable``'s block, column-resolved.

    ``rank`` selects the occurrence (vertical edge) within the chosen
    column, ``offset`` runs 0..6 over ``g, <five interior nodes>, h`` of
    that occurrence's switch.
    """

    variable: str
    rank: int
    offset: int  # 0..6


@dataclass(frozen=True)
class ClauseSlot:
    """A position inside clause ``clause_index``'s n_{j} -> n_{j+1}
    segment; ``offset`` runs 0..6 over ``e, <interior>, f`` of the chosen
    occurrence's switch."""

    clause_index: int
    offset: int  # 0..6


Slot = Union[FixedSlot, SwitchSegmentSlot, ColumnSlot, ClauseSlot]


@dataclass(frozen=True)
class SwitchInfo:
    """One switch of G_phi and the literal occurrence it belongs to."""

    index: int
    clause_index: int
    slot: int
    literal: Literal
    switch: Switch


class ReductionInstance:
    """``G_phi`` plus the structural metadata of the construction."""

    def __init__(self, formula: CnfFormula) -> None:
        self.formula = formula
        occurrences = formula.occurrences()
        if not occurrences:
            raise ValueError("the formula has no literal occurrences")
        self.switches: tuple[SwitchInfo, ...] = tuple(
            SwitchInfo(
                index=i,
                clause_index=clause_index,
                slot=slot,
                literal=literal,
                switch=Switch(("sw", i)),
            )
            for i, (clause_index, slot, literal) in enumerate(occurrences)
        )
        self.variables = formula.variables
        # Column membership: literal -> switch indices, in switch order.
        self.columns: dict[Literal, tuple[int, ...]] = {}
        for variable in self.variables:
            for literal in (Literal(variable, True), Literal(variable, False)):
                self.columns[literal] = tuple(
                    info.index
                    for info in self.switches
                    if info.literal == literal
                )
        self.graph = self._build_graph()

    # -- node naming -----------------------------------------------------

    @staticmethod
    def s_node(index: int) -> Node:
        """The distinguished node s1..s4."""
        return ("s", index)

    def top(self, variable: str) -> Node:
        """Top joint of a variable's building block."""
        return ("var", variable, "top")

    def bottom(self, variable: str) -> Node:
        """Bottom joint of a variable's building block."""
        return ("var", variable, "bottom")

    def clause_node(self, j: int) -> Node:
        """The node ``n_j`` of the clause block, ``0 <= j <= #clauses``."""
        return ("n", j)

    # -- construction ----------------------------------------------------

    def _build_graph(self) -> DiGraph:
        edges: set[tuple] = set()
        for info in self.switches:
            edges |= info.switch.edges()

        # Step 2: chain the switches.
        for left, right in zip(self.switches, self.switches[1:]):
            edges.add((left.switch.terminal("d"), right.switch.terminal("b")))
            edges.add((right.switch.terminal("a"), left.switch.terminal("c")))

        # Variable blocks (Figure 2): columns of q(g, h) paths.
        for variable in self.variables:
            for literal in (Literal(variable, True), Literal(variable, False)):
                member_switches = [
                    self.switches[i].switch for i in self.columns[literal]
                ]
                if not member_switches:
                    edges.add((self.top(variable), self.bottom(variable)))
                    continue
                edges.add(
                    (self.top(variable), member_switches[0].terminal("g"))
                )
                for upper, lower in zip(member_switches, member_switches[1:]):
                    edges.add((upper.terminal("h"), lower.terminal("g")))
                edges.add(
                    (member_switches[-1].terminal("h"), self.bottom(variable))
                )
        for upper, lower in zip(self.variables, self.variables[1:]):
            edges.add((self.bottom(upper), self.top(lower)))

        # Clause block: p(e, f) paths from n_{j-1} to n_j.
        for info in self.switches:
            edges.add(
                (self.clause_node(info.clause_index), info.switch.terminal("e"))
            )
            edges.add(
                (
                    info.switch.terminal("f"),
                    self.clause_node(info.clause_index + 1),
                )
            )

        # Step 3: variables block feeds the clause block.
        edges.add((self.bottom(self.variables[-1]), self.clause_node(0)))

        # Step 4: the four distinguished nodes and their five edges.
        first, last = self.switches[0], self.switches[-1]
        edges.add((self.s_node(1), last.switch.terminal("c")))
        edges.add((first.switch.terminal("a"), self.s_node(2)))
        edges.add((self.s_node(3), first.switch.terminal("b")))
        edges.add((last.switch.terminal("d"), self.top(self.variables[0])))
        edges.add(
            (self.clause_node(len(self.formula.clauses)), self.s_node(4))
        )

        return DiGraph(
            edges=edges,
            distinguished={
                "s1": self.s_node(1),
                "s2": self.s_node(2),
                "s3": self.s_node(3),
                "s4": self.s_node(4),
            },
        )

    # -- standard paths as slot sequences ---------------------------------

    def has_balanced_columns(self) -> bool:
        """Whether x and ~x occur equally often for every variable.

        Standard s3 -> s4 paths have a well-defined, choice-independent
        length exactly in this case (true for the complete formula
        phi_k, where every literal occurs ``2^{k-1}`` times).
        """
        return all(
            len(self.columns[Literal(v, True)])
            == len(self.columns[Literal(v, False)])
            for v in self.variables
        )

    def p1_slots(self) -> tuple[Slot, ...]:
        """Positions along a standard s1 -> s2 path, first to last."""
        slots: list[Slot] = [FixedSlot(self.s_node(1))]
        for info in reversed(self.switches):
            slots.append(FixedSlot(info.switch.terminal("c")))
            slots.extend(
                SwitchSegmentSlot("ca", info.index, offset)
                for offset in range(5)
            )
            slots.append(FixedSlot(info.switch.terminal("a")))
        slots.append(FixedSlot(self.s_node(2)))
        return tuple(slots)

    def p2_slots(self) -> tuple[Slot, ...]:
        """Positions along a standard s3 -> s4 path, first to last.

        Requires balanced columns (see :meth:`has_balanced_columns`).
        """
        if not self.has_balanced_columns():
            raise ValueError(
                "standard s3->s4 paths need balanced columns; "
                "this formula's literals occur unevenly"
            )
        slots: list[Slot] = [FixedSlot(self.s_node(3))]
        for info in self.switches:
            slots.append(FixedSlot(info.switch.terminal("b")))
            slots.extend(
                SwitchSegmentSlot("bd", info.index, offset)
                for offset in range(5)
            )
            slots.append(FixedSlot(info.switch.terminal("d")))
        for variable in self.variables:
            slots.append(FixedSlot(self.top(variable)))
            ranks = len(self.columns[Literal(variable, True)])
            for rank in range(ranks):
                slots.extend(
                    ColumnSlot(variable, rank, offset) for offset in range(7)
                )
            slots.append(FixedSlot(self.bottom(variable)))
        slots.append(FixedSlot(self.clause_node(0)))
        for clause_index in range(len(self.formula.clauses)):
            slots.extend(
                ClauseSlot(clause_index, offset) for offset in range(7)
            )
            slots.append(FixedSlot(self.clause_node(clause_index + 1)))
        slots.append(FixedSlot(self.s_node(4)))
        return tuple(slots)

    # -- slot resolution ---------------------------------------------------

    def resolve_ca(self, switch_index: int, offset: int, brand: str) -> Node:
        """Interior node of the c..a section under a brand choice."""
        name = "p_ca" if brand == "p" else "q_ca"
        return self.switches[switch_index].switch.interior(name)[offset]

    def resolve_bd(self, switch_index: int, offset: int, brand: str) -> Node:
        """Interior node of the b..d section under a brand choice."""
        name = "p_bd" if brand == "p" else "q_bd"
        return self.switches[switch_index].switch.interior(name)[offset]

    def resolve_column(
        self, literal: Literal, rank: int, offset: int
    ) -> Node:
        """Node of the ``rank``-th vertical edge of ``literal``'s column."""
        switch = self.switches[self.columns[literal][rank]].switch
        if offset == 0:
            return switch.terminal("g")
        if offset == 6:
            return switch.terminal("h")
        return switch.interior("q_gh")[offset - 1]

    def resolve_clause(self, switch_index: int, offset: int) -> Node:
        """Node of a clause segment routed through ``switch_index``."""
        switch = self.switches[switch_index].switch
        if offset == 0:
            return switch.terminal("e")
        if offset == 6:
            return switch.terminal("f")
        return switch.interior("p_ef")[offset - 1]

    def clause_occurrences(self, clause_index: int) -> tuple[int, ...]:
        """Switch indices of a clause's literal occurrences."""
        return tuple(
            info.index
            for info in self.switches
            if info.clause_index == clause_index
        )

    # -- constructive direction (satisfiable => disjoint paths) -----------

    def build_disjoint_paths(
        self, assignment: Mapping[str, bool]
    ) -> tuple[tuple, ...]:
        """Concrete disjoint paths realised by a satisfying assignment.

        Returns ``(p1, p2)`` as node tuples; raises ``ValueError`` if the
        assignment does not satisfy the formula.  Together with
        :func:`verify_disjoint_paths` this is the polynomial *witness
        check* for the satisfiable direction of the reduction.
        """
        if not self.formula.evaluate(dict(assignment)):
            raise ValueError("the assignment does not satisfy the formula")

        def truth(literal: Literal) -> bool:
            value = assignment[literal.variable]
            return value if literal.positive else not value

        def brand(info: SwitchInfo) -> str:
            return "p" if truth(info.literal) else "q"

        p1: list[Node] = [self.s_node(1)]
        for info in reversed(self.switches):
            p1.append(info.switch.terminal("c"))
            p1.extend(info.switch.interior(f"{brand(info)}_ca"))
            p1.append(info.switch.terminal("a"))
        p1.append(self.s_node(2))

        p2: list[Node] = [self.s_node(3)]
        for info in self.switches:
            p2.append(info.switch.terminal("b"))
            p2.extend(info.switch.interior(f"{brand(info)}_bd"))
            p2.append(info.switch.terminal("d"))
        for variable in self.variables:
            p2.append(self.top(variable))
            false_literal = Literal(variable, positive=not assignment[variable])
            for switch_index in self.columns[false_literal]:
                switch = self.switches[switch_index].switch
                p2.append(switch.terminal("g"))
                p2.extend(switch.interior("q_gh"))
                p2.append(switch.terminal("h"))
            p2.append(self.bottom(variable))
        p2.append(self.clause_node(0))
        for clause_index in range(len(self.formula.clauses)):
            chosen = next(
                index
                for index in self.clause_occurrences(clause_index)
                if truth(self.switches[index].literal)
            )
            switch = self.switches[chosen].switch
            p2.append(switch.terminal("e"))
            p2.extend(switch.interior("p_ef"))
            p2.append(switch.terminal("f"))
            p2.append(self.clause_node(clause_index + 1))
        p2.append(self.s_node(4))
        return tuple(p1), tuple(p2)


def sat_to_disjoint_paths(formula: CnfFormula) -> ReductionInstance:
    """Build ``G_phi`` for a CNF formula (Figures 2-6)."""
    return ReductionInstance(formula)


def standard_path_lengths(instance: ReductionInstance) -> tuple[int, int]:
    """Node counts of the standard s1->s2 and s3->s4 paths.

    Both are choice-independent (all standard paths of a kind have the
    same length) -- the property Theorem 6.6's structure A_k relies on.
    """
    return len(instance.p1_slots()), len(instance.p2_slots())


def verify_disjoint_paths(
    instance: ReductionInstance, p1: tuple, p2: tuple
) -> bool:
    """Check that (p1, p2) are simple, edge-valid, disjoint, and run
    s1 -> s2 and s3 -> s4 respectively."""
    graph = instance.graph
    for path in (p1, p2):
        if len(set(path)) != len(path):
            return False
        if any(not graph.has_edge(u, v) for u, v in zip(path, path[1:])):
            return False
    if set(p1) & set(p2):
        return False
    return (
        p1[0] == instance.s_node(1)
        and p1[-1] == instance.s_node(2)
        and p2[0] == instance.s_node(3)
        and p2[-1] == instance.s_node(4)
    )
