"""The Fortune-Hopcroft-Wyllie (FHW) machinery the case study builds on.

* :mod:`repro.fhw.pattern_class` -- the class C of pattern graphs and the
  characterisation of its complement via H1 / H2 / H3;
* :mod:`repro.fhw.homeomorphism` -- exact and polynomial homeomorphic-
  embedding checkers;
* :mod:`repro.fhw.switch` -- the switch gadget of Figure 1 (reconstructed
  from the six named passing paths; see DESIGN.md);
* :mod:`repro.fhw.reduction` -- the SAT -> two-disjoint-paths reduction
  ``phi |-> G_phi`` of Figures 2-6, including standard paths.
"""

from repro.fhw.homeomorphism import (
    homeomorphic_via_flow,
    homeomorphism_embedding,
    is_homeomorphic_to_distinguished_subgraph,
)
from repro.fhw.pattern_class import (
    H1,
    H2,
    H3,
    ClassCMembership,
    classify_pattern,
    complement_witness,
    is_in_class_c,
    pattern_h1,
    pattern_h2,
    pattern_h3,
)
from repro.fhw.reduction import (
    ReductionInstance,
    sat_to_disjoint_paths,
    standard_path_lengths,
)
from repro.fhw.switch import (
    Switch,
    SwitchLemmaReport,
    SwitchPaths,
    build_switch,
    check_switch_lemma,
    passing_paths,
)

__all__ = [
    "ClassCMembership",
    "classify_pattern",
    "is_in_class_c",
    "complement_witness",
    "pattern_h1",
    "pattern_h2",
    "pattern_h3",
    "H1",
    "H2",
    "H3",
    "is_homeomorphic_to_distinguished_subgraph",
    "homeomorphism_embedding",
    "homeomorphic_via_flow",
    "Switch",
    "SwitchPaths",
    "SwitchLemmaReport",
    "build_switch",
    "check_switch_lemma",
    "passing_paths",
    "ReductionInstance",
    "sat_to_disjoint_paths",
    "standard_path_lengths",
]
