"""A small recursive-descent parser for the Datalog(!=) concrete syntax.

Grammar::

    program  :=  rule*
    rule     :=  atom "." | atom ":-" body "." | atom "<-" body "."
    body     :=  literal ("," literal)*
    literal  :=  atom | term "=" term | term "!=" term
    atom     :=  IDENT "(" [term ("," term)*] ")"
    term     :=  IDENT            -- a variable
              |  "$" IDENT        -- a constant of the input structure

Comments run from ``%`` or ``#`` to end of line.  ``!=`` may also be
written as the Unicode ``≠``.  Nullary atoms are written ``P()``.

Malformed input raises :class:`DatalogSyntaxError` (alias
:data:`ParseError`), which pinpoints the offending token: 1-based line
and column, the token text, and a caret excerpt of the source line --
so a typo in rule 40 of a multi-rule source is located, not just
reported.

Example
-------
>>> program = parse_program('''
...     % Example 2.1 of the paper: w-avoiding paths.
...     T(x, y, w) :- E(x, y), w != x, w != y.
...     T(x, y, w) :- E(x, z), T(z, y, w), w != x.
... ''', goal="T")
>>> len(program.rules)
2
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from repro.datalog.ast import (
    Atom,
    BodyLiteral,
    Constant,
    Equality,
    Inequality,
    Program,
    Rule,
    Term,
    Variable,
)


class DatalogSyntaxError(Exception):
    """Malformed program text, located precisely.

    Beyond the human-readable message (which always names the offending
    token and its position, plus a caret excerpt of the source line),
    the error carries structured fields so tools can report or recover
    programmatically:

    ``reason``
        The bare diagnosis, without location decoration.
    ``line`` / ``column``
        1-based position of the offending token (``None`` only for
        errors at end of input on an empty source).
    ``token``
        The offending token's text (``None`` at end of input).
    ``source_line``
        The raw source line the error points into, when available.
    """

    def __init__(
        self,
        reason: str,
        *,
        line: int | None = None,
        column: int | None = None,
        token: str | None = None,
        source_line: str | None = None,
    ) -> None:
        self.reason = reason
        self.line = line
        self.column = column
        self.token = token
        self.source_line = source_line
        super().__init__(self._render())

    def _render(self) -> str:
        message = self.reason
        if self.token is not None:
            message += f": found {self.token!r}"
        if self.line is not None:
            message += f" at line {self.line}, column {self.column}"
        if self.source_line is not None and self.column is not None:
            stripped = self.source_line.rstrip()
            caret = " " * (self.column - 1) + "^"
            message += f"\n  {stripped}\n  {caret}"
        return message


#: Backwards-compatible alias -- earlier releases raised ``ParseError``.
ParseError = DatalogSyntaxError


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    line: int
    column: int


_TOKEN_RE = re.compile(
    r"""
    (?P<comment>[%\#][^\n]*)
  | (?P<arrow>:-|<-)
  | (?P<neq>!=|≠)
  | (?P<eq>=)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<dot>\.)
  | (?P<constant>\$[A-Za-z_][A-Za-z0-9_']*)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_']*)
  | (?P<whitespace>\s+)
  | (?P<error>.)
    """,
    re.VERBOSE,
)


def _tokenize(text: str, lines: list[str]) -> Iterator[_Token]:
    line = 1
    line_start = 0
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup or "error"
        value = match.group()
        column = match.start() - line_start + 1
        if kind in ("whitespace", "comment"):
            newlines = value.count("\n")
            if newlines:
                line += newlines
                line_start = match.start() + value.rfind("\n") + 1
            continue
        if kind == "error":
            raise DatalogSyntaxError(
                "unexpected character",
                line=line,
                column=column,
                token=value,
                source_line=lines[line - 1] if line <= len(lines) else None,
            )
        yield _Token(kind, value, line, column)


#: Human-readable names for token kinds, used in diagnostics.
_KIND_NAMES = {
    "arrow": "':-'",
    "neq": "'!='",
    "eq": "'='",
    "lparen": "'('",
    "rparen": "')'",
    "comma": "','",
    "dot": "'.'",
    "constant": "a constant",
    "ident": "an identifier",
}


class _Parser:
    def __init__(self, text: str) -> None:
        self._lines = text.splitlines()
        self._tokens = list(_tokenize(text, self._lines))
        self._position = 0

    def _source_line(self, line: int | None) -> str | None:
        if line is None or not 1 <= line <= len(self._lines):
            return None
        return self._lines[line - 1]

    def _error(self, reason: str, token: _Token | None) -> DatalogSyntaxError:
        """A located syntax error at ``token`` (or at end of input)."""
        if token is None:
            last = self._tokens[-1] if self._tokens else None
            line = last.line if last is not None else None
            column = (
                last.column + len(last.text) if last is not None else None
            )
            return DatalogSyntaxError(
                f"{reason} (unexpected end of input)",
                line=line,
                column=column,
                source_line=self._source_line(line),
            )
        return DatalogSyntaxError(
            reason,
            line=token.line,
            column=token.column,
            token=token.text,
            source_line=self._source_line(token.line),
        )

    def _peek(self) -> _Token | None:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _next(self, expected: str | None = None) -> _Token:
        token = self._peek()
        if token is None:
            what = (
                _KIND_NAMES.get(expected, expected)
                if expected
                else "more input"
            )
            raise self._error(f"expected {what}", None)
        if expected is not None and token.kind != expected:
            raise self._error(
                f"expected {_KIND_NAMES.get(expected, expected)}", token
            )
        self._position += 1
        return token

    def parse_rules(self) -> list[Rule]:
        rules: list[Rule] = []
        while self._peek() is not None:
            rules.append(self.parse_rule())
        return rules

    def parse_rule(self) -> Rule:
        head = self._parse_atom()
        token = self._peek()
        if token is not None and token.kind == "arrow":
            self._next()
            body = self._parse_body()
        else:
            body = []
        self._next("dot")
        return Rule(head, body)

    def _parse_body(self) -> list[BodyLiteral]:
        literals = [self._parse_literal()]
        while self._peek() is not None and self._peek().kind == "comma":
            self._next()
            literals.append(self._parse_literal())
        return literals

    def _parse_literal(self) -> BodyLiteral:
        token = self._peek()
        if token is None:
            raise self._error("expected a body literal", None)
        if token.kind == "ident":
            after = (
                self._tokens[self._position + 1]
                if self._position + 1 < len(self._tokens)
                else None
            )
            if after is not None and after.kind == "lparen":
                return self._parse_atom()
        term = self._parse_term()
        comparator = self._next()
        if comparator.kind == "eq":
            return Equality(term, self._parse_term())
        if comparator.kind == "neq":
            return Inequality(term, self._parse_term())
        raise self._error("expected '=', '!=' or an atom", comparator)

    def _parse_atom(self) -> Atom:
        name = self._next("ident")
        self._next("lparen")
        args: list[Term] = []
        token = self._peek()
        if token is not None and token.kind != "rparen":
            args.append(self._parse_term())
            while self._peek() is not None and self._peek().kind == "comma":
                self._next()
                args.append(self._parse_term())
        self._next("rparen")
        return Atom(name.text, args)

    def _parse_term(self) -> Term:
        token = self._next()
        if token.kind == "ident":
            return Variable(token.text)
        if token.kind == "constant":
            return Constant(token.text[1:])
        raise self._error("expected a term (variable or $constant)", token)


def parse_rule(text: str) -> Rule:
    """Parse a single rule, e.g. ``"S(x, y) :- E(x, y)."``."""
    parser = _Parser(text)
    rule = parser.parse_rule()
    trailing = parser._peek()
    if trailing is not None:
        raise parser._error("trailing input after the rule", trailing)
    return rule


def parse_program(text: str, goal: str) -> Program:
    """Parse a whole program and designate ``goal`` as its goal predicate."""
    return Program(_Parser(text).parse_rules(), goal=goal)
