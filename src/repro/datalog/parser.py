"""A small recursive-descent parser for the Datalog(!=) concrete syntax.

Grammar::

    program  :=  rule*
    rule     :=  atom "." | atom ":-" body "." | atom "<-" body "."
    body     :=  literal ("," literal)*
    literal  :=  atom | term "=" term | term "!=" term
    atom     :=  IDENT "(" [term ("," term)*] ")"
    term     :=  IDENT            -- a variable
              |  "$" IDENT        -- a constant of the input structure

Comments run from ``%`` or ``#`` to end of line.  ``!=`` may also be
written as the Unicode ``≠``.  Nullary atoms are written ``P()``.

Example
-------
>>> program = parse_program('''
...     % Example 2.1 of the paper: w-avoiding paths.
...     T(x, y, w) :- E(x, y), w != x, w != y.
...     T(x, y, w) :- E(x, z), T(z, y, w), w != x.
... ''', goal="T")
>>> len(program.rules)
2
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from repro.datalog.ast import (
    Atom,
    BodyLiteral,
    Constant,
    Equality,
    Inequality,
    Program,
    Rule,
    Term,
    Variable,
)


class ParseError(Exception):
    """Raised on malformed program text, with line/column context."""


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    line: int
    column: int


_TOKEN_RE = re.compile(
    r"""
    (?P<comment>[%\#][^\n]*)
  | (?P<arrow>:-|<-)
  | (?P<neq>!=|≠)
  | (?P<eq>=)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<dot>\.)
  | (?P<constant>\$[A-Za-z_][A-Za-z0-9_']*)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_']*)
  | (?P<whitespace>\s+)
  | (?P<error>.)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> Iterator[_Token]:
    line = 1
    line_start = 0
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup or "error"
        value = match.group()
        column = match.start() - line_start + 1
        if kind in ("whitespace", "comment"):
            newlines = value.count("\n")
            if newlines:
                line += newlines
                line_start = match.start() + value.rfind("\n") + 1
            continue
        if kind == "error":
            raise ParseError(
                f"unexpected character {value!r} at line {line}, column {column}"
            )
        yield _Token(kind, value, line, column)


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens = list(_tokenize(text))
        self._position = 0

    def _peek(self) -> _Token | None:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _next(self, expected: str | None = None) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError(
                f"unexpected end of input"
                + (f" (expected {expected})" if expected else "")
            )
        if expected is not None and token.kind != expected:
            raise ParseError(
                f"expected {expected} but found {token.text!r} at line "
                f"{token.line}, column {token.column}"
            )
        self._position += 1
        return token

    def parse_rules(self) -> list[Rule]:
        rules: list[Rule] = []
        while self._peek() is not None:
            rules.append(self.parse_rule())
        return rules

    def parse_rule(self) -> Rule:
        head = self._parse_atom()
        token = self._peek()
        if token is not None and token.kind == "arrow":
            self._next()
            body = self._parse_body()
        else:
            body = []
        self._next("dot")
        return Rule(head, body)

    def _parse_body(self) -> list[BodyLiteral]:
        literals = [self._parse_literal()]
        while self._peek() is not None and self._peek().kind == "comma":
            self._next()
            literals.append(self._parse_literal())
        return literals

    def _parse_literal(self) -> BodyLiteral:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input inside a rule body")
        if token.kind == "ident":
            after = (
                self._tokens[self._position + 1]
                if self._position + 1 < len(self._tokens)
                else None
            )
            if after is not None and after.kind == "lparen":
                return self._parse_atom()
        term = self._parse_term()
        comparator = self._next()
        if comparator.kind == "eq":
            return Equality(term, self._parse_term())
        if comparator.kind == "neq":
            return Inequality(term, self._parse_term())
        raise ParseError(
            f"expected '=', '!=' or an atom at line {comparator.line}, "
            f"column {comparator.column}"
        )

    def _parse_atom(self) -> Atom:
        name = self._next("ident")
        self._next("lparen")
        args: list[Term] = []
        token = self._peek()
        if token is not None and token.kind != "rparen":
            args.append(self._parse_term())
            while self._peek() is not None and self._peek().kind == "comma":
                self._next()
                args.append(self._parse_term())
        self._next("rparen")
        return Atom(name.text, args)

    def _parse_term(self) -> Term:
        token = self._next()
        if token.kind == "ident":
            return Variable(token.text)
        if token.kind == "constant":
            return Constant(token.text[1:])
        raise ParseError(
            f"expected a term but found {token.text!r} at line {token.line}, "
            f"column {token.column}"
        )


def parse_rule(text: str) -> Rule:
    """Parse a single rule, e.g. ``"S(x, y) :- E(x, y)."``."""
    parser = _Parser(text)
    rule = parser.parse_rule()
    if parser._peek() is not None:
        raise ParseError("trailing input after the rule")
    return rule


def parse_program(text: str, goal: str) -> Program:
    """Parse a whole program and designate ``goal`` as its goal predicate."""
    return Program(_Parser(text).parse_rules(), goal=goal)
