"""Hash indexes over relations: the shared index layer of the engines.

Every join strategy in the reproduction ultimately answers the same
question: *which rows of relation R agree with the values already bound
at a given subset of argument positions?*  This module centralises the
answer as hash indexes keyed by position signature:

* :func:`hash_index` -- the one-shot grouping primitive, also used by
  the relational-algebra evaluator's natural join;
* :class:`RelationIndex` -- one relation's row set plus its indexes,
  built lazily per position signature and maintained *incrementally* as
  new rows arrive (so the indexed semi-naive engine never rebuilds an
  index between fixpoint rounds);
* :class:`IndexedDatabase` -- a name -> :class:`RelationIndex` mapping
  with delta-merge bookkeeping, the store behind
  ``evaluate(..., method="indexed")``.

The index layer is purely an access-path optimisation: it stores the
same row sets the plain ``dict[str, set]`` database does, so every
engine built on top of it computes the paper's operator ``Theta``
exactly.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping

from repro.obs import metrics as _metrics

Element = Hashable
Row = tuple
PositionSignature = tuple[int, ...]


def hash_index(
    rows: Iterable[Row], positions: PositionSignature
) -> dict[tuple, list[Row]]:
    """Group ``rows`` by their projection onto ``positions``.

    The empty signature groups every row under the empty key, so a
    lookup with ``()`` is a full scan -- the degenerate case needs no
    special handling at call sites.
    """
    index: dict[tuple, list[Row]] = {}
    for row in rows:
        index.setdefault(tuple(row[i] for i in positions), []).append(row)
    return index


class RelationIndex:
    """One relation's rows plus lazily-built, incrementally-kept indexes.

    An index for a position signature is built on first use
    (:meth:`matching` / :meth:`index_for`) and from then on updated in
    place by :meth:`add` / :meth:`add_rows` and :meth:`remove` /
    :meth:`remove_rows` -- the point of the class: fixpoint engines
    merge small deltas every round (and the incremental-maintenance
    layer additionally retracts them), and rebuilding indexes over a
    large relation per churn step is where the avoidable quadratic
    factor lives.

    All mutation must go through the add/remove methods; mutating
    :attr:`rows` directly would silently desynchronise the indexes.
    """

    __slots__ = ("_rows", "_indexes")

    def __init__(self, rows: Iterable[Row] = ()) -> None:
        self._rows: set[Row] = set(tuple(row) for row in rows)
        self._indexes: dict[PositionSignature, dict[tuple, list[Row]]] = {}

    @property
    def rows(self) -> set[Row]:
        """The row set (do not mutate; use :meth:`add` / :meth:`add_all`)."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: Row) -> bool:
        return row in self._rows

    @property
    def signatures(self) -> frozenset[PositionSignature]:
        """Position signatures whose indexes have been materialised."""
        return frozenset(self._indexes)

    def index_for(
        self, positions: PositionSignature
    ) -> Mapping[tuple, list[Row]]:
        """The index keyed on ``positions``, building it if absent."""
        index = self._indexes.get(positions)
        if index is None:
            index = hash_index(self._rows, positions)
            self._indexes[positions] = index
            m = _metrics.metrics
            m.inc("index.builds")
            m.inc("index.rows_indexed", len(self._rows))
        return index

    def matching(
        self, positions: PositionSignature, key: tuple
    ) -> Iterable[Row]:
        """Rows whose projection onto ``positions`` equals ``key``.

        Counts an exact ``index.hits`` / ``index.misses`` per lookup
        (the compiled-plan executor bypasses this method and reports
        aggregate ``index.probes`` instead).
        """
        rows = self.index_for(positions).get(key, ())
        _metrics.metrics.inc("index.hits" if rows else "index.misses")
        return rows

    def add(self, row: Row) -> bool:
        """Insert one row; returns whether it was new.

        Every already-built index is extended in place, so lookups stay
        consistent without any rebuild.
        """
        if row in self._rows:
            return False
        self._rows.add(row)
        for positions, index in self._indexes.items():
            index.setdefault(
                tuple(row[i] for i in positions), []
            ).append(row)
        return True

    def add_all(self, rows: Iterable[Row]) -> set[Row]:
        """Insert many rows; returns the subset that was actually new."""
        fresh = {row for row in rows if self.add(row)}
        if fresh:
            # Aggregate maintenance telemetry (one call per merge, not
            # per row): every fresh row was appended into every
            # already-materialised index.
            m = _metrics.metrics
            m.inc("index.rows_added", len(fresh))
            m.inc(
                "index.incremental_updates",
                len(fresh) * len(self._indexes),
            )
        return fresh

    #: Alias pairing with :meth:`remove_rows` -- the maintenance API the
    #: incremental-view layer (:mod:`repro.datalog.incremental`) uses.
    add_rows = add_all

    def remove(self, row: Row) -> bool:
        """Delete one row; returns whether it was present.

        Every already-built index is shrunk in place (the row is removed
        from its bucket under each position signature; emptied buckets
        are dropped), so lookups stay consistent without any rebuild --
        the mirror image of :meth:`add`.
        """
        if row not in self._rows:
            return False
        self._rows.discard(row)
        for positions, index in self._indexes.items():
            key = tuple(row[i] for i in positions)
            bucket = index.get(key)
            if bucket is None:  # pragma: no cover - add/remove keep sync
                continue
            bucket.remove(row)
            if not bucket:
                del index[key]
        return True

    def remove_rows(self, rows: Iterable[Row]) -> set[Row]:
        """Delete many rows; returns the subset actually removed."""
        gone = {row for row in rows if self.remove(row)}
        if gone:
            m = _metrics.metrics
            m.inc("index.rows_removed", len(gone))
            m.inc(
                "index.incremental_updates",
                len(gone) * len(self._indexes),
            )
        return gone

    def census(self) -> dict:
        """Size summary of the relation and its materialised indexes.

        Deterministic (signatures sorted) and cheap -- bucket *counts*,
        not contents -- so bench rows and EXPLAIN ANALYZE surfaces can
        embed it without copying row data.
        """
        return {
            "rows": len(self._rows),
            "indexes": [
                {
                    "positions": list(signature),
                    "buckets": len(self._indexes[signature]),
                }
                for signature in sorted(self._indexes)
            ],
        }


class IndexedDatabase:
    """A database whose relations carry incrementally-maintained indexes.

    Construction *adopts* the given row iterables (copied into fresh
    sets); subsequent growth goes through :meth:`merge`, which routes
    every insertion through the per-relation index maintenance.
    """

    __slots__ = ("_relations",)

    def __init__(
        self, relations: Mapping[str, Iterable[Row]] | None = None
    ) -> None:
        self._relations: dict[str, RelationIndex] = {}
        for name, rows in (relations or {}).items():
            self._relations[name] = RelationIndex(rows)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def relation(self, name: str) -> RelationIndex:
        """The (possibly empty, created-on-demand) index for ``name``."""
        index = self._relations.get(name)
        if index is None:
            index = RelationIndex()
            self._relations[name] = index
        return index

    def rows(self, name: str) -> set[Row]:
        """The row set of ``name`` (empty set if the relation is absent)."""
        index = self._relations.get(name)
        return index.rows if index is not None else set()

    def merge(self, name: str, rows: Iterable[Row]) -> set[Row]:
        """Union ``rows`` into ``name``; returns the genuinely new rows."""
        return self.relation(name).add_all(rows)

    def remove(self, name: str, rows: Iterable[Row]) -> set[Row]:
        """Delete ``rows`` from ``name``; returns the rows actually
        removed (empty when the relation is absent)."""
        index = self._relations.get(name)
        return index.remove_rows(rows) if index is not None else set()

    def snapshot(self, names: Iterable[str]) -> dict[str, frozenset]:
        """Frozen copies of the named relations (for stage tracking)."""
        return {name: frozenset(self.rows(name)) for name in names}

    def census(self) -> dict[str, dict]:
        """Per-relation :meth:`RelationIndex.census`, name-sorted."""
        return {
            name: self._relations[name].census()
            for name in sorted(self._relations)
        }
