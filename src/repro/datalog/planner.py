"""Greedy join-order planning for rule bodies.

The indexed engine does not execute a rule body in declaration order:
:func:`plan_rule` reorders the relational atoms so that every join step
has as many argument positions bound as possible (and therefore the
most selective index lookup), schedules equalities and inequalities at
the earliest point their terms are determined, and enumerates the
variables no atom binds -- the paper's universe-ranging head-only and
constraint-only variables -- one at a time so that constraints prune
each universe sweep immediately.

Plans are purely an execution order over the same satisfying-binding
set: every atom and every constraint of the body is scheduled exactly
once, so the plan computes exactly the rule's contribution to the
operator ``Theta``.  The invariants are pinned by
``tests/test_planner.py``.

For semi-naive evaluation :func:`plan_rule` additionally specialises a
plan per IDB body-atom occurrence (``delta_atom_index``): the delta
occurrence is scheduled *first*, so each round's work is driven by the
(small) set of newly derived tuples rather than the full relation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Union

from repro.datalog.ast import (
    Atom,
    Constant,
    Equality,
    Inequality,
    Rule,
    Variable,
)


@dataclass(frozen=True)
class AtomStep:
    """Join the current bindings with one relational atom.

    ``bound_positions`` lists the argument positions whose terms are
    already determined when the step runs (constants, or variables bound
    by earlier steps) -- the index signature the executor looks up.
    ``atom_index`` is the atom's position among ``rule.body_atoms()``;
    ``is_delta`` marks the occurrence a semi-naive plan reads from the
    delta relation instead of the full one.
    """

    atom: Atom
    body_index: int
    atom_index: int
    bound_positions: tuple[int, ...]
    is_delta: bool = False


@dataclass(frozen=True)
class ConstraintStep:
    """Apply one equality / inequality to the current bindings.

    For an equality with exactly one side still unbound, ``binds`` names
    the variable the step *assigns* (rather than filters); otherwise the
    step only discards bindings.
    """

    literal: Union[Equality, Inequality]
    body_index: int
    binds: Variable | None = None


@dataclass(frozen=True)
class EnumerateStep:
    """Range one otherwise-unbound variable over the whole universe.

    This is the paper's semantics for head-only / constraint-only
    variables (``Theta_A(S) = {a : A, a |= phi(w, S)}`` has no range
    restriction); planning enumerates such variables one at a time so
    ready constraints can prune between sweeps.
    """

    variable: Variable


PlanStep = Union[AtomStep, ConstraintStep, EnumerateStep]


@dataclass(frozen=True)
class RulePlan:
    """An execution order for one rule body.

    ``delta_atom_index`` is ``None`` for a full plan, or the
    ``body_atoms()`` index of the occurrence joined against the delta.
    """

    rule: Rule
    steps: tuple[PlanStep, ...]
    delta_atom_index: int | None = None

    def atom_steps(self) -> tuple[AtomStep, ...]:
        return tuple(s for s in self.steps if isinstance(s, AtomStep))

    def constraint_steps(self) -> tuple[ConstraintStep, ...]:
        return tuple(s for s in self.steps if isinstance(s, ConstraintStep))

    def enumerated_variables(self) -> tuple[Variable, ...]:
        return tuple(
            s.variable for s in self.steps if isinstance(s, EnumerateStep)
        )


@dataclass
class _PlannerState:
    bound: set[Variable] = field(default_factory=set)
    steps: list[PlanStep] = field(default_factory=list)

    def term_bound(self, term) -> bool:
        return isinstance(term, Constant) or term in self.bound


def _flush_ready_constraints(
    state: _PlannerState, pending: dict[int, Union[Equality, Inequality]]
) -> None:
    """Schedule every pending constraint whose time has come.

    Inequalities need both sides determined; equalities fire as soon as
    one side is (binding the other when it is an unbound variable).
    Fires repeatedly because an equality binding can ready its
    neighbours.
    """
    changed = True
    while changed and pending:
        changed = False
        for body_index in sorted(pending):
            literal = pending[body_index]
            left, right = literal.left, literal.right
            left_bound = state.term_bound(left)
            right_bound = state.term_bound(right)
            if isinstance(literal, Equality):
                if left_bound and right_bound:
                    state.steps.append(ConstraintStep(literal, body_index))
                elif left_bound and isinstance(right, Variable):
                    state.steps.append(
                        ConstraintStep(literal, body_index, binds=right)
                    )
                    state.bound.add(right)
                elif right_bound and isinstance(left, Variable):
                    state.steps.append(
                        ConstraintStep(literal, body_index, binds=left)
                    )
                    state.bound.add(left)
                else:
                    continue
            else:
                if not (left_bound and right_bound):
                    continue
                state.steps.append(ConstraintStep(literal, body_index))
            del pending[body_index]
            changed = True


def _atom_score(atom: Atom, state: _PlannerState) -> tuple[int, int]:
    """Greedy ranking: (bound positions, -new variables) -- maximised."""
    bound_positions = sum(
        1 for term in atom.args if state.term_bound(term)
    )
    new_variables = len(
        {
            term
            for term in atom.args
            if isinstance(term, Variable) and term not in state.bound
        }
    )
    return (bound_positions, -new_variables)


def _schedule_atom(
    state: _PlannerState,
    atom: Atom,
    body_index: int,
    atom_index: int,
    is_delta: bool,
) -> None:
    positions = tuple(
        position
        for position, term in enumerate(atom.args)
        if state.term_bound(term)
    )
    state.steps.append(
        AtomStep(atom, body_index, atom_index, positions, is_delta)
    )
    state.bound.update(atom.variables())


def plan_rule(
    rule: Rule,
    delta_atom_index: int | None = None,
    *,
    bound_variables: Iterable[Variable] = (),
) -> RulePlan:
    """Plan one rule body; see the module docstring for the strategy.

    ``delta_atom_index`` (an index into ``rule.body_atoms()``) produces
    the semi-naive specialisation in which that occurrence is scheduled
    first and marked ``is_delta``.

    ``bound_variables`` seeds the planner with variables already bound
    *before* the body runs.  The magic-sets rewrite uses this as its
    sideways-information-passing order: planning a rule with the
    adornment's bound head variables pre-bound yields the greedy atom
    order, and each ``AtomStep.bound_positions`` is exactly the atom's
    adornment at that point.  Plans built with a non-empty
    ``bound_variables`` describe an *order* only -- they must not be fed
    to the indexed engine's compiler, which allocates slots on first
    binding.
    """
    atoms: list[tuple[int, int, Atom]] = []  # (atom_index, body_index, atom)
    pending: dict[int, Union[Equality, Inequality]] = {}
    atom_index = 0
    for body_index, literal in enumerate(rule.body):
        if isinstance(literal, Atom):
            atoms.append((atom_index, body_index, literal))
            atom_index += 1
        else:
            pending[body_index] = literal
    if delta_atom_index is not None and not (
        0 <= delta_atom_index < len(atoms)
    ):
        raise ValueError(
            f"delta_atom_index {delta_atom_index} out of range for a body "
            f"with {len(atoms)} atoms"
        )

    state = _PlannerState(bound=set(bound_variables))
    # Constant-vs-constant constraints (and, with pre-bound variables,
    # anything they determine) are ready before the first atom runs.
    _flush_ready_constraints(state, pending)

    unscheduled = list(atoms)
    if delta_atom_index is not None:
        position = next(
            i for i, (a, __, ___) in enumerate(unscheduled)
            if a == delta_atom_index
        )
        a_index, b_index, atom = unscheduled.pop(position)
        _schedule_atom(state, atom, b_index, a_index, is_delta=True)
        _flush_ready_constraints(state, pending)

    while unscheduled:
        best = max(
            range(len(unscheduled)),
            key=lambda i: _atom_score(unscheduled[i][2], state)
            + (-unscheduled[i][0],),  # deterministic tie-break: body order
        )
        a_index, b_index, atom = unscheduled.pop(best)
        _schedule_atom(state, atom, b_index, a_index, is_delta=False)
        _flush_ready_constraints(state, pending)

    # Universe-ranged variables, one sweep at a time.
    for variable in sorted(rule.variables()):
        if variable in state.bound:
            continue
        state.steps.append(EnumerateStep(variable))
        state.bound.add(variable)
        _flush_ready_constraints(state, pending)

    if pending:  # pragma: no cover - every rule variable is bound above
        raise AssertionError(
            f"constraints never became ready: {sorted(pending)}"
        )
    return RulePlan(rule, tuple(state.steps), delta_atom_index)


def describe_step(step: PlanStep) -> tuple[str, str]:
    """``(kind, label)`` for one plan step -- the EXPLAIN ANALYZE node
    vocabulary (see :mod:`repro.obs.analyze`).

    Kinds: ``delta`` (the semi-naive delta occurrence), ``probe``
    (hash-index lookup), ``scan`` (full-relation scan), ``bind`` /
    ``filter`` (constraints), ``enumerate`` (universe sweep).  Labels
    are deterministic functions of the step, identical however the plan
    is later executed, so the two plan engines aggregate runtime counts
    under the same node names.
    """
    if isinstance(step, AtomStep):
        atom = step.atom
        rendered = f"{atom.predicate}({', '.join(str(a) for a in atom.args)})"
        keys = ", ".join(
            f"[{position}]={atom.args[position]}"
            for position in step.bound_positions
        )
        if step.is_delta:
            label = f"delta d{rendered}"
            if keys:
                label += f" where {keys}"
            return "delta", label
        if step.bound_positions:
            return "probe", f"probe {rendered} via {keys}"
        return "scan", f"scan {rendered}"
    if isinstance(step, ConstraintStep):
        literal = step.literal
        if step.binds is not None:
            other = (
                literal.right if step.binds == literal.left else literal.left
            )
            return "bind", f"bind {step.binds} := {other}"
        return "filter", f"filter {literal}"
    assert isinstance(step, EnumerateStep)
    return "enumerate", f"enumerate {step.variable} in universe"


def plan_program_rules(rule: Rule, idb_predicates: frozenset[str]):
    """All semi-naive plans for a rule: one per IDB body-atom occurrence.

    Returns an empty tuple for EDB-only rules (they contribute nothing
    after the first round).
    """
    plans = []
    for atom_index, atom in enumerate(rule.body_atoms()):
        if atom.predicate in idb_predicates:
            plans.append(plan_rule(rule, delta_atom_index=atom_index))
    return tuple(plans)
