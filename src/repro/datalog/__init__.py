"""Datalog(!=): the query language of the paper (Section 2).

A Datalog(!=) program is a finite set of rules whose bodies may contain
atomic formulas, equalities, and inequalities -- but no negation.  Its
semantics is the least fixpoint of the monotone operator the rules induce
on every finite structure.

Public API
----------

* AST: :class:`Variable`, :class:`Constant`, :class:`Atom`,
  :class:`Equality`, :class:`Inequality`, :class:`Rule`, :class:`Program`.
* :func:`parse_program` -- text syntax (``Head(x, y) :- E(x, z), z != y.``).
* :func:`evaluate` / :func:`stages` / :func:`boolean_query` -- the fixpoint
  engines (indexed semi-naive by default; plain semi-naive and naive for
  cross-validation, generated-code via ``method="codegen"``, and a
  sharded multiprocess pool via ``method="parallel", workers=N`` --
  see :mod:`repro.datalog.parallel`) and the paper's stage sequence
  ``Theta^1 <= Theta^2 <= ...``.
* :mod:`repro.datalog.indexing` / :mod:`repro.datalog.planner` -- the
  hash-index layer and the greedy join-order planner behind the default
  engine.
* :func:`query` / :func:`magic_rewrite` -- goal-directed evaluation: a
  goal binding (constants at bound positions) is pushed through the
  magic-sets rewrite of :mod:`repro.datalog.magic`, so only demanded
  facts are derived; answers match direct evaluation exactly.
* :class:`IncrementalSession` -- incremental view maintenance: keep a
  fixpoint live under EDB updates (semi-naive delta continuation for
  insertions, Delete/Rederive for deletions, derivation counts from
  :mod:`repro.datalog.provenance`).
* :mod:`repro.guard` -- resource-governed evaluation: every engine
  accepts a :class:`~repro.guard.ResourceBudget` / cancellation token;
  exhaustion raises :class:`~repro.guard.BudgetExceeded` carrying a
  :class:`PartialFixpointResult` (a sound under-approximation, by
  monotonicity) and, for the resumable engines, a
  :class:`~repro.guard.Checkpoint` that ``evaluate(...,
  resume_from=...)`` finishes deterministically.
* :mod:`repro.datalog.library` -- every concrete program in the paper.
* :mod:`repro.datalog.homeo` -- generated programs for Theorems 6.1 / 6.2.
"""

from repro.datalog.ast import (
    Atom,
    Constant,
    Equality,
    Inequality,
    Program,
    Rule,
    Variable,
)
from repro.datalog.algebra_engine import evaluate_algebra
from repro.datalog.evaluation import (
    FixpointResult,
    PartialFixpointResult,
    QueryResult,
    boolean_query,
    evaluate,
    query,
    stages,
)
from repro.datalog.incremental import (
    IncrementalSession,
    MaintenanceResult,
    Update,
    parse_update_script,
)
from repro.datalog.magic import MagicRewrite, magic_rewrite
from repro.datalog.parser import (
    DatalogSyntaxError,
    ParseError,
    parse_program,
    parse_rule,
)
from repro.datalog.provenance import SupportTable
from repro.datalog.validation import ProgramAnalysis, analyze_program

__all__ = [
    "Variable",
    "Constant",
    "Atom",
    "Equality",
    "Inequality",
    "Rule",
    "Program",
    "parse_program",
    "parse_rule",
    "ParseError",
    "DatalogSyntaxError",
    "IncrementalSession",
    "MaintenanceResult",
    "Update",
    "parse_update_script",
    "SupportTable",
    "evaluate",
    "evaluate_algebra",
    "query",
    "QueryResult",
    "magic_rewrite",
    "MagicRewrite",
    "stages",
    "boolean_query",
    "FixpointResult",
    "PartialFixpointResult",
    "analyze_program",
    "ProgramAnalysis",
]
