"""Per-tuple derivation bookkeeping for incremental view maintenance.

The Delete/Rederive algorithm of :mod:`repro.datalog.incremental` needs
to answer, for every IDB tuple, one question cheaply: *after these
tuples disappear, does an alternative immediate derivation remain?*
This module maintains the material for that answer.

A **support** of an IDB tuple ``t`` is one immediate derivation of it:
a rule index together with the ground rows matched at the rule's
relational body atoms, in body order.  Two satisfying bindings that
differ only in universe-enumerated (head-only / constraint-only)
variables collapse to the same support -- a support's validity depends
only on its body rows being present, because the universe of the input
structure never changes and equality/inequality constraints over a
fixed row assignment are decided once and for all.  Rules without body
atoms yield the empty support ``(rule, ())``, which never mentions a
database tuple and therefore survives every deletion -- facts stay
derivable, as they must.

:class:`SupportTable` stores, per predicate and per tuple, the *set* of
supports.  Sets rather than bare counts are the load-bearing choice:
delta joins legitimately enumerate one derivation several times (once
per delta-atom occurrence it contains), and set insertion/removal is
idempotent, so the maintenance code needs no old-vs-new relation
versioning discipline to keep counts exact.  The *derivation count* of
a tuple is the size of its support set.

The table is exact provenance, not an approximation, so the
delete-path invariant holds: after over-deletion has discarded every
support that mentions a deleted tuple, ``count(pred, row) > 0`` holds
exactly for the tuples with an immediate derivation from the surviving
database -- the Delete/Rederive "rederive" seed, found in time
proportional to the over-deleted set instead of a full re-evaluation.
"""

from __future__ import annotations

from typing import Iterable, Iterator

Row = tuple

#: One immediate derivation: ``(rule_index, ground body-atom rows)``.
SupportKey = tuple[int, tuple[Row, ...]]


def support_key(rule_index: int, body_rows: Iterable[Row]) -> SupportKey:
    """The canonical support for one satisfying binding of one rule."""
    return (rule_index, tuple(body_rows))


class SupportTable:
    """Supports (immediate derivations) of every IDB tuple.

    The table is maintained by :class:`~repro.datalog.incremental.IncrementalSession`:
    populated by a full enumeration pass after the initial fixpoint,
    grown by insertion propagation, shrunk by over-deletion.  All
    operations are idempotent, so re-enumerating a derivation (which
    semi-naive delta joins do whenever a derivation contains several
    delta tuples) never skews the counts.
    """

    __slots__ = ("_supports",)

    def __init__(self) -> None:
        self._supports: dict[str, dict[Row, set[SupportKey]]] = {}

    def add(self, predicate: str, row: Row, key: SupportKey) -> bool:
        """Record one derivation of ``row``; returns whether it was new."""
        rows = self._supports.setdefault(predicate, {})
        keys = rows.get(row)
        if keys is None:
            rows[row] = {key}
            return True
        if key in keys:
            return False
        keys.add(key)
        return True

    def discard(self, predicate: str, row: Row, key: SupportKey) -> bool:
        """Forget one derivation of ``row``; returns whether it existed."""
        keys = self._supports.get(predicate, {}).get(row)
        if keys is None or key not in keys:
            return False
        keys.discard(key)
        return True

    def count(self, predicate: str, row: Row) -> int:
        """Number of known immediate derivations of ``row``."""
        keys = self._supports.get(predicate, {}).get(row)
        return 0 if keys is None else len(keys)

    def supported(self, predicate: str, row: Row) -> bool:
        """Whether at least one immediate derivation remains."""
        return self.count(predicate, row) > 0

    def supports(self, predicate: str, row: Row) -> frozenset[SupportKey]:
        """The current support set of ``row`` (a frozen copy)."""
        keys = self._supports.get(predicate, {}).get(row)
        return frozenset(() if keys is None else keys)

    def drop_row(self, predicate: str, row: Row) -> None:
        """Forget every derivation of ``row`` (tuple left the database)."""
        rows = self._supports.get(predicate)
        if rows is not None:
            rows.pop(row, None)

    def clone(self) -> "SupportTable":
        """An independent deep copy (two levels of dict plus set copies).

        The transactional update path of
        :class:`~repro.datalog.incremental.IncrementalSession` snapshots
        the table before mutating it mid-round, so an aborted update can
        restore exact provenance by swapping the clone back in.
        """
        copy = SupportTable()
        copy._supports = {
            predicate: {row: set(keys) for row, keys in rows.items()}
            for predicate, rows in self._supports.items()
        }
        return copy

    def counts(self, predicate: str) -> dict[Row, int]:
        """Derivation count of every tracked tuple of ``predicate``."""
        return {
            row: len(keys)
            for row, keys in self._supports.get(predicate, {}).items()
            if keys
        }

    def predicates(self) -> Iterator[str]:
        return iter(self._supports)

    def total_supports(self) -> int:
        """Number of stored derivations, across every predicate."""
        return sum(
            len(keys)
            for rows in self._supports.values()
            for keys in rows.values()
        )
