"""Program transformations: renaming, merging, pruning.

Utility passes a Datalog(≠) library needs around its generators:

* :func:`rename_predicates` -- consistent predicate renaming (used to
  avoid clashes when layering programs, as Theorem 6.1 layers Q' on T);
* :func:`merge_programs` -- union of rule sets under a chosen goal;
* :func:`reachable_predicates` / :func:`prune_unreachable` -- drop rules
  that cannot contribute to the goal (the generated game programs of
  Theorem 6.2 contain challenge predicates for unreachable pebble sets
  on some patterns);
* :func:`rename_variables_apart` -- rule-level variable freshening.

All passes are semantics-preserving on the goal predicate, which the
test suite checks by evaluating before and after on random structures.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.datalog.ast import (
    Atom,
    BodyLiteral,
    Equality,
    Inequality,
    Program,
    Rule,
    Term,
    Variable,
)


def _map_atom(atom: Atom, rename: Callable[[str], str]) -> Atom:
    return Atom(rename(atom.predicate), atom.args)


def rename_predicates(
    program: Program, mapping: Mapping[str, str]
) -> Program:
    """Rename predicates (IDB and/or EDB) throughout the program.

    Distinct predicates must stay distinct; unknown names are left
    untouched.  The goal follows the renaming.
    """
    values = list(mapping.values())
    if len(set(values)) != len(values):
        raise ValueError("predicate renaming must be injective")

    def rename(name: str) -> str:
        return mapping.get(name, name)

    renamed_names = {rename(p) for p in program.idb_predicates} | {
        rename(p) for p in program.edb_predicates
    }
    if len(renamed_names) < len(
        program.idb_predicates | program.edb_predicates
    ):
        raise ValueError("renaming collapses distinct predicates")

    rules = []
    for rule in program.rules:
        body: list[BodyLiteral] = []
        for literal in rule.body:
            if isinstance(literal, Atom):
                body.append(_map_atom(literal, rename))
            else:
                body.append(literal)
        rules.append(Rule(_map_atom(rule.head, rename), body))
    return Program(rules, goal=rename(program.goal))


def merge_programs(first: Program, second: Program, goal: str) -> Program:
    """The union of two programs' rules under a designated goal.

    IDB/EDB roles must be compatible: a predicate may not be an IDB of
    one program and an EDB of the other unless the caller intends the
    layering (in which case merging is exactly how to express it --
    Theorem 6.1's Q' over T is ``merge_programs(q_rules, t_rules, "Q")``).
    Arities must agree; this is checked by the Program constructor.
    """
    return Program(first.rules + second.rules, goal=goal)


def reachable_predicates(
    program: Program, include_edb: bool = False
) -> frozenset[str]:
    """Predicates on which the goal (transitively) depends.

    By default only IDB predicates are returned (a head-only predicate
    that never feeds the goal is *not* reachable, even though it looks
    like a seed fact).  With ``include_edb=True`` the reachable EDB
    predicates join the set -- the EDBs a goal-directed evaluation
    actually has to read.  Historically every EDB mentioned anywhere in
    the program was treated as required, so junk rules over
    uninterpreted EDB predicates made :func:`repro.datalog.evaluate`
    refuse goal queries that never touch them; the magic rewrite and
    :func:`required_edb_predicates` use the reachable set instead.
    """
    reached = {program.goal}
    edb: set[str] = set()
    frontier = [program.goal]
    while frontier:
        predicate = frontier.pop()
        for rule in program.rules_for(predicate):
            for atom in rule.body_atoms():
                name = atom.predicate
                if name in program.idb_predicates:
                    if name not in reached:
                        reached.add(name)
                        frontier.append(name)
                else:
                    edb.add(name)
    if include_edb:
        reached |= edb
    return frozenset(reached)


def required_edb_predicates(program: Program) -> frozenset[str]:
    """The EDB predicates a goal evaluation must actually read.

    A strict subset of :attr:`Program.edb_predicates` whenever the
    program carries goal-unreachable rules over other EDBs; evaluating
    :func:`prune_unreachable` output requires exactly these.
    """
    return reachable_predicates(program, include_edb=True) - (
        program.idb_predicates
    )


def prune_unreachable(program: Program) -> Program:
    """Drop rules whose head cannot reach the goal.

    Semantics-preserving on the goal: pruned predicates never feed it.
    """
    keep = reachable_predicates(program)
    rules = [
        rule for rule in program.rules if rule.head.predicate in keep
    ]
    return Program(rules, goal=program.goal)


def rename_variables_apart(rule: Rule, suffix: str) -> Rule:
    """Append ``suffix`` to every variable of the rule.

    Useful when splicing rule bodies together manually.
    """

    def freshen(term: Term) -> Term:
        if isinstance(term, Variable):
            return Variable(term.name + suffix)
        return term

    def map_literal(literal: BodyLiteral) -> BodyLiteral:
        if isinstance(literal, Atom):
            return Atom(literal.predicate, tuple(freshen(t) for t in literal.args))
        if isinstance(literal, Equality):
            return Equality(freshen(literal.left), freshen(literal.right))
        return Inequality(freshen(literal.left), freshen(literal.right))

    head = Atom(rule.head.predicate, tuple(freshen(t) for t in rule.head.args))
    return Rule(head, tuple(map_literal(l) for l in rule.body))
