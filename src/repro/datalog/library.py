"""Every concrete Datalog(!=) program that appears in the paper.

* :func:`transitive_closure_program` -- Example 2.2 (pure Datalog).
* :func:`avoiding_path_program` -- Example 2.1: "is there a w-avoiding
  path from x to y?".
* :func:`two_disjoint_paths_from_source_program` -- the illustration in
  the proof of Theorem 6.1 (Q' on top of T).
* :func:`q_program` -- the general ``Q_{k,l}`` family of Theorem 6.1:
  k node-disjoint, {t_1..t_l}-avoiding simple paths from s to s_1..s_k.
* :func:`rooted_star_homeomorphism_program` -- the full Theorem 6.1
  construction for a pattern in class C, including the self-loop case and
  the root-is-head orientation (via edge reversal).

The generated programs are cross-validated against the flow oracle
(:mod:`repro.flow`) and the exact path search in the test suite.

:func:`goal_bound_library` pairs each query with its natural goal
binding (constants at the distinguished nodes) for goal-directed
evaluation via :func:`repro.datalog.query`.
"""

from __future__ import annotations

from repro.datalog.ast import (
    Atom,
    Constant,
    Equality,
    Inequality,
    Program,
    Rule,
    Variable,
)
from repro.datalog.parser import parse_program


def path_systems_program() -> Program:
    """The path systems query [Coo74], cited in the paper's Section 1 as
    a PTIME-complete query that plain Datalog captures.

    Input vocabulary: ``Axiom/1`` (the axiom nodes) and ``Rule/3``
    (``Rule(x, y, z)``: x is derivable from y and z together).  The goal
    ``D`` holds the derivable nodes::

        D(x) :- Axiom(x).
        D(x) :- Rule(x, y, z), D(y), D(z).
    """
    return parse_program(
        """
        D(x) :- Axiom(x).
        D(x) :- Rule(x, y, z), D(y), D(z).
        """,
        goal="D",
    )


def solve_path_system(
    nodes, axioms, rules
) -> frozenset:
    """Ground-truth closure for the path systems query.

    ``rules`` are ``(x, y, z)`` triples meaning "x follows from y and z".
    """
    derivable = set(axioms)
    changed = True
    while changed:
        changed = False
        for x, y, z in rules:
            if x not in derivable and y in derivable and z in derivable:
                derivable.add(x)
                changed = True
    return frozenset(derivable)


def transitive_closure_program() -> Program:
    """Example 2.2: the transitive-closure query TC (pure Datalog)."""
    return parse_program(
        """
        S(x, y) :- E(x, y).
        S(x, y) :- E(x, z), S(z, y).
        """,
        goal="S",
    )


def avoiding_path_program() -> Program:
    """Example 2.1: T(x, y, w) <=> there is a w-avoiding path x -> y.

    The canonical Datalog(!=)-but-not-Datalog query: it is monotone but
    not preserved when universe elements are identified.
    """
    return parse_program(
        """
        T(x, y, w) :- E(x, y), w != x, w != y.
        T(x, y, w) :- E(x, z), T(z, y, w), w != x.
        """,
        goal="T",
    )


def two_disjoint_paths_from_source_program() -> Program:
    """The proof of Theorem 6.1, base illustration.

    ``Q(s, s1, s2)`` holds iff there are node-disjoint simple paths from
    s to s1 and from s to s2 (sharing only s).  The program layers the
    paper's Q' on the avoiding-path predicate T:

        Q'(s, s1, s2) :- E(s, s2), T(s, s1, s2).
        Q'(s, s1, s2) :- Q'(s, s1, w), E(w, s2), T(s, s1, s2).

    By Menger's theorem Q' coincides with the disjoint-paths query.
    """
    return parse_program(
        """
        T(x, y, w) :- E(x, y), w != x, w != y.
        T(x, y, w) :- E(x, z), T(z, y, w), w != x.
        Q(s, s1, s2) :- E(s, s2), T(s, s1, s2).
        Q(s, s1, s2) :- Q(s, s1, w), E(w, s2), T(s, s1, s2).
        """,
        goal="Q",
    )


def q_predicate_name(k: int, l: int) -> str:
    """The predicate name used for ``Q_{k,l}``."""
    return f"Q_{k}_{l}"


def _edge(u: Variable, v: Variable, reverse: bool) -> Atom:
    """An E-atom, optionally with reversed orientation.

    Reversal realises the "root is the head of every edge" half of class
    C: paths towards the root in G are paths from the root in G reversed,
    and reversing every E-atom of the program is equivalent to reversing
    the input graph.
    """
    if reverse:
        return Atom("E", (v, u))
    return Atom("E", (u, v))


def q_rules(k: int, l: int, reverse: bool = False) -> list[Rule]:
    """The rules defining ``Q_{k,l}`` (only; no auxiliary predicates).

    Head: ``Q_{k,l}(s, s1, ..., sk, t1, ..., tl)``.
    """
    if k < 1 or l < 0:
        raise ValueError("need k >= 1 and l >= 0")
    s = Variable("s")
    targets = [Variable(f"s{i}") for i in range(1, k + 1)]
    avoided = [Variable(f"t{i}") for i in range(1, l + 1)]
    w = Variable("w")
    head = Atom(q_predicate_name(k, l), (s, *targets, *avoided))

    if k == 1:
        s1 = targets[0]
        base_body = [_edge(s, s1, reverse)]
        base_body += [Inequality(s, t) for t in avoided]
        base_body += [Inequality(s1, t) for t in avoided]
        rec_body = [
            Atom(q_predicate_name(1, l), (s, w, *avoided)),
            _edge(w, s1, reverse),
        ]
        rec_body += [Inequality(s1, t) for t in avoided]
        return [Rule(head, base_body), Rule(head, rec_body)]

    sk = targets[-1]
    inner = Atom(
        q_predicate_name(k - 1, l + 1),
        (s, *targets[:-1], sk, *avoided),
    )
    # Note: the paper's displayed rules omit the ``sk != t_i``
    # inequalities for k >= 2, but its correctness argument (Menger on
    # the {t}-avoiding paths) needs the w-path itself to avoid the t's,
    # exactly as the displayed k = 1 rules do; without them the program
    # provably over-approximates (see tests/test_datalog_library.py for
    # the 7-node counterexample the exact oracle found).  We generate
    # the inequality-carrying rules.
    base_body = [_edge(s, sk, reverse)]
    base_body += [Inequality(s, t) for t in avoided]
    base_body += [Inequality(sk, t) for t in avoided]
    base_body.append(inner)
    rec_body = [
        Atom(q_predicate_name(k, l), (s, *targets[:-1], w, *avoided)),
        _edge(w, sk, reverse),
    ]
    rec_body += [Inequality(sk, t) for t in avoided]
    rec_body.append(inner)
    return [Rule(head, base_body), Rule(head, rec_body)]


def q_rules_as_displayed(k: int, l: int) -> list[Rule]:
    """The ``Q_{k,l}`` rules exactly as displayed in the paper (k >= 2).

    These omit the ``sk != t_i`` inequalities and therefore
    over-approximate the disjoint-paths query (the path to ``s_k`` may
    cross an avoided node).  Kept for the ablation benchmark that
    measures the over-approximation; every production caller should use
    :func:`q_rules` / :func:`q_program`.
    """
    if k < 2:
        return q_rules(k, l)
    s = Variable("s")
    targets = [Variable(f"s{i}") for i in range(1, k + 1)]
    avoided = [Variable(f"t{i}") for i in range(1, l + 1)]
    w = Variable("w")
    head = Atom(q_predicate_name(k, l), (s, *targets, *avoided))
    sk = targets[-1]
    inner = Atom(
        q_predicate_name(k - 1, l + 1),
        (s, *targets[:-1], sk, *avoided),
    )
    base_body = [Atom("E", (s, sk)), inner]
    rec_body = [
        Atom(q_predicate_name(k, l), (s, *targets[:-1], w, *avoided)),
        Atom("E", (w, sk)),
        inner,
    ]
    return [Rule(head, base_body), Rule(head, rec_body)]


def q_program_as_displayed(k: int, l: int = 0) -> Program:
    """The full displayed-rules program (ablation target; see
    :func:`q_rules_as_displayed`)."""
    rules: list[Rule] = []
    for j in range(1, k + 1):
        rules.extend(q_rules_as_displayed(j, l + k - j))
    return Program(rules, goal=q_predicate_name(k, l))


def q_program(k: int, l: int = 0, reverse: bool = False) -> Program:
    """Theorem 6.1: the full program whose goal is ``Q_{k,l}``.

    ``Q_{k,l}(s, s1, .., sk, t1, .., tl)`` holds iff there are k
    node-disjoint simple {t1..tl}-avoiding paths from s to s1, ..., sk
    (sharing only s).  The program contains rules for all the auxiliary
    predicates ``Q_{j, l + k - j}``, j < k, as in the paper's induction.

    With ``reverse=True`` the program instead asks for paths *into* s
    from s1, ..., sk (the root-is-head orientation).
    """
    rules: list[Rule] = []
    for j in range(1, k + 1):
        rules.extend(q_rules(j, l + k - j, reverse=reverse))
    return Program(rules, goal=q_predicate_name(k, l))


def rooted_star_homeomorphism_program(
    k: int, reverse: bool = False, self_loop: bool = False
) -> Program:
    """Theorem 6.1: H-subgraph homeomorphism for a class-C pattern.

    The pattern H is a "star": a root plus ``k`` non-loop edges all
    leaving the root (``reverse=False``) or all entering it
    (``reverse=True``), plus optionally a self-loop at the root.  The
    goal predicate is ``Goal(s, s1, ..., sk)`` (just ``Goal(s)`` when
    ``k == 0``, which requires the self-loop).

    For the self-loop case the paper observes::

        Q_H(s, s1..sk)  iff  (self-loop on s and Q_{k,0}(s, s1..sk))
                         or  exists w distinct from s, s1..sk with an
                             edge w -> s and Q_{k+1,0}(s, s1..sk, w)
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if k == 0 and not self_loop:
        raise ValueError("a class-C pattern with no edges is empty")

    s = Variable("s")
    targets = [Variable(f"s{i}") for i in range(1, k + 1)]
    w = Variable("w")
    goal_head = Atom("Goal", (s, *targets))
    rules: list[Rule] = []

    if not self_loop:
        for j in range(1, k + 1):
            rules.extend(q_rules(j, k - j, reverse=reverse))
        rules.append(
            Rule(goal_head, [Atom(q_predicate_name(k, 0), (s, *targets))])
        )
        return Program(rules, goal="Goal")

    # Self-loop cases.  A loop edge of H maps to a simple cycle through s.
    if k == 0:
        rules.append(Rule(goal_head, [_edge(s, s, reverse)]))
        rules.extend(q_rules(1, 0, reverse=reverse))
        rules.append(
            Rule(
                goal_head,
                [
                    Atom(q_predicate_name(1, 0), (s, w)),
                    _edge(w, s, reverse),
                    Inequality(w, s),
                ],
            )
        )
        return Program(rules, goal="Goal")

    for j in range(1, k + 2):
        rules.extend(q_rules(j, k + 1 - j, reverse=reverse))
    for j in range(1, k + 1):
        rules.extend(q_rules(j, k - j, reverse=reverse))
    # Case 1: G has a self-loop on s (the loop cycle is just {s}).
    rules.append(
        Rule(
            goal_head,
            [
                _edge(s, s, reverse),
                Atom(q_predicate_name(k, 0), (s, *targets)),
            ],
        )
    )
    # Case 2: the loop expands through a fresh node w with an edge w -> s.
    body = [
        _edge(w, s, reverse),
        Inequality(w, s),
    ]
    body += [Inequality(w, t) for t in targets]
    body.append(Atom(q_predicate_name(k + 1, 0), (s, *targets, w)))
    rules.append(Rule(goal_head, body))
    return Program(rules, goal="Goal")


def goal_bound_transitive_closure() -> tuple[Program, Atom]:
    """TC specialised to one source/target pair: ``S($src, $dst)``.

    The structure must interpret the ``src``/``dst`` constants (e.g. via
    :meth:`Structure.with_constants`).  Under the magic rewrite this is
    the textbook demand pattern -- reachability explored from ``src``
    only.
    """
    return transitive_closure_program(), Atom(
        "S", (Constant("src"), Constant("dst"))
    )


def goal_bound_avoiding_path() -> tuple[Program, Atom]:
    """Example 2.1 with all three nodes distinguished:
    ``T($src, $dst, $avoid)``."""
    return avoiding_path_program(), Atom(
        "T", (Constant("src"), Constant("dst"), Constant("avoid"))
    )


def goal_bound_two_disjoint_from_source() -> tuple[Program, Atom]:
    """The Theorem 6.1 illustration at a fixed triple:
    ``Q($s, $s1, $s2)``."""
    return two_disjoint_paths_from_source_program(), Atom(
        "Q", (Constant("s"), Constant("s1"), Constant("s2"))
    )


def goal_bound_q(k: int, l: int = 0) -> tuple[Program, Atom]:
    """``Q_{k,l}`` at fully distinguished nodes: constants ``s``,
    ``s1..sk``, ``t1..tl`` in head-argument order.

    This is the shape of the paper's actual question -- "are there k
    disjoint avoiding paths *between these nodes*" -- and the benchmark
    case of ``benchmarks/bench_magic_sets.py``.
    """
    program = q_program(k, l)
    args = (
        Constant("s"),
        *[Constant(f"s{i}") for i in range(1, k + 1)],
        *[Constant(f"t{i}") for i in range(1, l + 1)],
    )
    return program, Atom(q_predicate_name(k, l), args)


def goal_bound_library() -> dict[str, tuple[Program, Atom]]:
    """Goal-bound variants of the catalogue: name -> (program, goal atom).

    Every goal atom is fully bound (the paper's queries distinguish all
    their nodes); partially bound atoms are easy to build by replacing
    constants with variables.  Constant names match the head-variable
    conventions above, except TC's ``src``/``dst``.
    """
    return {
        "transitive-closure": goal_bound_transitive_closure(),
        "avoiding-path": goal_bound_avoiding_path(),
        "two-disjoint-from-source": goal_bound_two_disjoint_from_source(),
        "q-1-1": goal_bound_q(1, 1),
        "q-2-0": goal_bound_q(2, 0),
        "q-2-1": goal_bound_q(2, 1),
    }


def library_programs() -> dict[str, Program]:
    """The named catalogue of the paper's concrete programs.

    One entry per program the reproduction ships, keyed by the names the
    CLI accepts (``repro explain NAME``, test parametrisation, bench
    rows).  Freshly constructed on every call -- callers may mutate
    nothing, but plans and compiled forms are theirs to cache.
    """
    return {
        "transitive-closure": transitive_closure_program(),
        "avoiding-path": avoiding_path_program(),
        "path-systems": path_systems_program(),
        "two-disjoint-from-source": two_disjoint_paths_from_source_program(),
        "q-1-1": q_program(1, 1),
        "q-2-0": q_program(2, 0),
        "q-2-1": q_program(2, 1),
        "q-2-1-displayed": q_program_as_displayed(2, 1),
        "q-2-0-reversed": q_program(2, 0, reverse=True),
        "star-2": rooted_star_homeomorphism_program(2),
        "star-1-loop": rooted_star_homeomorphism_program(1, self_loop=True),
        "star-0-loop": rooted_star_homeomorphism_program(0, self_loop=True),
    }
