"""Parallel sharded semi-naive evaluation (the ``parallel`` engine).

Semi-naive rounds are embarrassingly parallel: within one round every
(rule, delta-occurrence) plan is independent, and each plan's work is
driven by an outer loop over the previous round's delta rows -- so any
partition of those rows splits the round's satisfying bindings exactly,
and the union of the per-shard ``fired`` sets is precisely what a
single-process round derives.  This module exploits that:

* the coordinator hash-partitions each round's delta by the *planner's
  first join key* (:func:`shard_key_positions`: the delta-atom columns
  feeding the first index probe, so rows sharing a shard share probe
  locality) using a process-independent CRC32 (:func:`partition_rows`;
  builtin ``hash`` is per-process randomized for strings and would
  break shard determinism across the pool);
* rule-plan x shard work units fan out to a persistent
  ``multiprocessing`` worker pool (forked once per worker count, reused
  across evaluations; see :func:`shutdown_workers`).  Workers rebuild
  an :class:`~repro.datalog.indexing.IndexedDatabase` from the
  broadcast EDB + accumulated-IDB snapshot at ``init`` and reuse the
  codegen-compiled rule functions (:mod:`repro.datalog.codegen`), so a
  shard evaluates exactly as a codegen round restricted to its rows;
* shard deltas are merged and deduped at a round barrier in the
  coordinator, then broadcast back so every worker's store advances to
  the same barrier before the next round.

Parity contract (pinned by ``tests/test_parallel.py``): relations, goal
answers, iteration counts, stage snapshots, and the semantic profile
view (per-round delta sizes + per-rule distinct-new-head firings) are
identical to the indexed/codegen engines' -- the ``fired`` sets the
codegen functions return already exclude the pre-round relation, and
worker stores sit exactly at the barrier when they run, so the per-rule
union over shards *is* the rule's distinct-new head set.

Governance and failure semantics:

* the :class:`~repro.guard.EvaluationGuard` lives in the coordinator:
  ``check_boundary`` at every barrier, a ``tick`` pulse per collected
  work unit in pool mode (per outer delta row inline), and a checkpoint
  emitted after every round -- the engine is in
  :data:`~repro.guard.RESUMABLE_ENGINES`;
* a worker death (real, or injected through the ``kill_worker`` fault
  site -- see :mod:`repro.testing.faults`) is detected at the barrier:
  the round's results never arrive, the coordinator raises
  :class:`WorkerDied`, and because shard results merge only *after* all
  units return, the database is untouched since the last barrier --
  resuming from the last emitted checkpoint is bit-identical to an
  uninterrupted run (``tests/test_parallel_faults.py``);
* ``workers=1`` runs inline (no processes, no serialization): the
  codegen loop with optional in-process sharding, so the degenerate
  configuration costs within a few percent of the codegen engine
  (E22's overhead gate) and the 240-pair differential corpus exercises
  the engine cheaply.

Metrics (all through :mod:`repro.obs.metrics`, no-ops when disabled):
``parallel.rounds``, ``parallel.shards`` (non-empty units dispatched),
``parallel.merge_tuples`` (deduped delta tuples merged at barriers),
``parallel.worker_seconds`` plus ``parallel.worker_seconds.<i>``
(per-unit wall time histograms, aggregate and per worker).
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import queue as _queue_module
import time
import traceback
import zlib
from typing import Callable, Iterable, Mapping

from repro.guard import GuardTrip
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.testing import faults as _faults

from repro.datalog.ast import Program, Variable
from repro.datalog.codegen import bind_delta_functions, bind_full_functions
from repro.datalog.indexing import IndexedDatabase
from repro.datalog.planner import RulePlan, plan_program_rules


class WorkerDied(RuntimeError):
    """A pool worker died before returning its round's results.

    Raised at the round barrier by the coordinator; merges happen only
    after every unit returns, so the database (and the last emitted
    checkpoint) still describe the previous barrier -- resume from
    there is bit-identical to an unkilled run.
    """

    def __init__(self, worker: int, round_index: int) -> None:
        self.worker = worker
        self.round_index = round_index
        super().__init__(
            f"parallel worker {worker} died during round {round_index}; "
            f"state is at the round-{round_index - 1} barrier"
        )


# ---------------------------------------------------------------------------
# Deterministic hash partitioning.
# ---------------------------------------------------------------------------


def shard_key_positions(plan: RulePlan) -> tuple[int, ...]:
    """The delta-atom argument positions feeding the plan's first join.

    The planner schedules the delta occurrence first; the next atom
    step's bound positions are the first join's lookup key, and the
    variables behind them map back onto columns of the delta atom.
    Rows agreeing on those columns drive the same index buckets, so
    sharding by them keeps each worker's probes local.  Plans with no
    such join (single-atom bodies, joins only through enumerated
    variables) fall back to the whole row.  Any choice is *correct* --
    shard results merge by set union -- which the shard-count
    invariance suite pins.
    """
    atom_steps = plan.atom_steps()
    delta_step = next(step for step in atom_steps if step.is_delta)
    delta_vars = {
        term for term in delta_step.atom.args if isinstance(term, Variable)
    }
    for step in atom_steps:
        if step.is_delta:
            continue
        key_vars = {
            term
            for position in step.bound_positions
            for term in (step.atom.args[position],)
            if isinstance(term, Variable) and term in delta_vars
        }
        if key_vars:
            return tuple(
                position
                for position, term in enumerate(delta_step.atom.args)
                if isinstance(term, Variable) and term in key_vars
            )
    return tuple(range(len(delta_step.atom.args)))


def partition_rows(
    rows: Iterable[tuple],
    shards: int,
    key_positions: tuple[int, ...],
) -> list[set]:
    """Partition ``rows`` into ``shards`` buckets by join-key hash.

    Process-independent (CRC32 over ``repr``, never builtin ``hash``,
    which is salted per process for strings) and total: every row lands
    in exactly one bucket and the union of buckets round-trips -- the
    properties ``tests/test_parallel.py`` pins under seeded churn.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards == 1:
        return [set(rows)]
    buckets: list[set] = [set() for __ in range(shards)]
    for row in rows:
        key = tuple(row[i] for i in key_positions) if key_positions else row
        buckets[zlib.crc32(repr(key).encode("utf-8")) % shards].add(row)
    return buckets


def _shard_positions(program: Program) -> list[tuple[tuple[int, ...], ...]]:
    """Per rule, per delta plan (in codegen binding order): shard key."""
    idb = program.idb_predicates
    return [
        tuple(
            shard_key_positions(plan)
            for plan in plan_program_rules(rule, idb)
        )
        for rule in program.rules
    ]


# ---------------------------------------------------------------------------
# The worker process.
# ---------------------------------------------------------------------------


def _worker_main(worker_index: int, tasks, results) -> None:
    """Worker loop: init -> (merge | full | delta)* -> shutdown.

    Forked children inherit the parent's mutable observability and
    fault-injection globals, so the first act is to silence them: a
    worker must never fire an injected fault (the ``kill_worker`` site
    belongs to the coordinator) and never double-count metrics.  Each
    ``init`` rebuilds the store and rebinds the codegen functions for a
    new evaluation; message order per worker queue is FIFO, so a round's
    units always see the store at the barrier the preceding ``merge``
    established.
    """
    _faults.disable_faults()
    _metrics.disable_metrics()
    _trace.disable_tracing()
    store = None
    universe: list = []
    heads: tuple[str, ...] = ()
    full_functions: list = []
    delta_functions: list = []
    while True:
        message = tasks.get()
        kind = message[0]
        if kind == "shutdown":
            break
        try:
            if kind == "init":
                __, __, program, relations, universe, constants = message
                store = IndexedDatabase(relations)
                heads = tuple(rule.head.predicate for rule in program.rules)
                full_functions = bind_full_functions(
                    program, store, constants
                )
                delta_functions = bind_delta_functions(
                    program, store, constants
                )
            elif kind == "merge":
                __, payload = message
                for predicate, rows in payload.items():
                    store.merge(predicate, rows)
            elif kind == "full":
                __, epoch, unit, rule_index = message
                start = time.perf_counter()
                fired, produced = full_functions[rule_index](
                    (), store.rows(heads[rule_index]), universe, None
                )
                results.put((
                    "result", epoch, worker_index, unit, rule_index,
                    fired, produced, time.perf_counter() - start,
                ))
            elif kind == "delta":
                __, epoch, unit, rule_index, plan_pos, rows = message
                __, function = delta_functions[rule_index][plan_pos]
                start = time.perf_counter()
                fired, produced = function(
                    rows, store.rows(heads[rule_index]), universe, None
                )
                results.put((
                    "result", epoch, worker_index, unit, rule_index,
                    fired, produced, time.perf_counter() - start,
                ))
        except Exception:  # pragma: no cover - worker-crash diagnostics
            results.put((
                "error", message[1] if len(message) > 1 else -1,
                worker_index, traceback.format_exc(),
            ))


class _WorkerPool:
    """A persistent fork pool: one task queue per worker, one shared
    result queue, epoch-tagged results so an interrupted evaluation's
    stragglers cannot leak into the next one."""

    def __init__(self, workers: int) -> None:
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        else:  # pragma: no cover - non-POSIX fallback
            context = multiprocessing.get_context()
        self.workers = workers
        self.broken = False
        self._epochs = itertools.count(1)
        self.tasks = [context.Queue() for __ in range(workers)]
        self.results = context.Queue()
        self.processes = [
            context.Process(
                target=_worker_main,
                args=(index, self.tasks[index], self.results),
                daemon=True,
            )
            for index in range(workers)
        ]
        for process in self.processes:
            process.start()

    def next_epoch(self) -> int:
        return next(self._epochs)

    def alive(self, worker: int) -> bool:
        return self.processes[worker].is_alive()

    def send(self, worker: int, message: tuple) -> None:
        self.tasks[worker].put(message)

    def broadcast(self, message: tuple) -> None:
        for task_queue in self.tasks:
            task_queue.put(message)

    def kill(self, worker: int) -> None:
        """SIGKILL one worker (the ``kill_worker`` site's translation)."""
        process = self.processes[worker]
        process.kill()
        process.join(timeout=5)

    def shutdown(self) -> None:
        for process, task_queue in zip(self.processes, self.tasks):
            if process.is_alive():
                try:
                    task_queue.put(("shutdown",))
                except Exception:  # pragma: no cover - teardown races
                    pass
        for process in self.processes:
            process.join(timeout=2)
            if process.is_alive():
                process.kill()
                process.join(timeout=2)
        for task_queue in self.tasks + [self.results]:
            task_queue.cancel_join_thread()
            task_queue.close()


_pools: dict[int, _WorkerPool] = {}


def _acquire_pool(workers: int) -> _WorkerPool:
    pool = _pools.get(workers)
    if pool is not None and (
        pool.broken or not all(pool.alive(w) for w in range(pool.workers))
    ):
        pool.shutdown()
        del _pools[workers]
        pool = None
    if pool is None:
        pool = _WorkerPool(workers)
        _pools[workers] = pool
    return pool


def shutdown_workers() -> None:
    """Terminate every cached worker pool (idempotent; atexit-hooked)."""
    for pool in list(_pools.values()):
        pool.shutdown()
    _pools.clear()


atexit.register(shutdown_workers)


# ---------------------------------------------------------------------------
# The engine.
# ---------------------------------------------------------------------------

#: Result-queue poll interval while waiting out a round's units; each
#: timeout re-checks liveness of every worker with outstanding work.
_POLL_SECONDS = 0.05


def parallel_engine(
    program: Program,
    database: dict,
    universe: list,
    constants: Mapping,
    stage_snapshots: list | None = None,
    profile=None,
    guard=None,
    checkpoint: Callable | None = None,
    resume=None,
    analyze=None,
    workers: int = 1,
    shards: int | None = None,
) -> int:
    """Sharded semi-naive fixpoint; mutates ``database``; returns rounds.

    Same signature contract as the engines in
    :mod:`repro.datalog.evaluation` plus ``workers`` / ``shards``
    (``shards`` defaults to ``workers``).  ``workers=1`` evaluates
    inline; ``workers>=2`` fans units to the persistent pool.
    """
    from repro.datalog.evaluation import _EngineInterrupt

    if analyze is not None:
        raise ValueError(
            "the parallel engine does not collect analyze statistics"
        )
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    shard_count = workers if shards is None else shards
    if shard_count < 1:
        raise ValueError(f"shards must be >= 1, got {shard_count}")
    if workers == 1:
        return _run_inline(
            program, database, universe, constants, stage_snapshots,
            profile, guard, checkpoint, resume, shard_count,
        )
    return _run_pool(
        program, database, universe, constants, stage_snapshots,
        profile, guard, checkpoint, resume, workers, shard_count,
        _EngineInterrupt,
    )


def _snapshot(database: dict, idb) -> dict[str, frozenset]:
    return {p: frozenset(database.get(p, ())) for p in idb}


def _merge_round(
    program: Program,
    per_rule_fired: list[set],
    merge: Callable[[str, set], set],
) -> tuple[dict[str, set], list[int]]:
    """Union per-rule fired sets into the store; returns (delta, firings).

    ``fired`` sets already exclude the pre-round relation (the codegen
    functions subtract ``existing``), so their sizes *are* the semantic
    per-rule distinct-new-head firings and their per-predicate union is
    the round's delta.
    """
    rule_firings = [len(fired) for fired in per_rule_fired]
    derived: dict[str, set] = {p: set() for p in program.idb_predicates}
    for rule, fired in zip(program.rules, per_rule_fired):
        derived[rule.head.predicate] |= fired
    delta = {
        predicate: merge(predicate, tuples)
        for predicate, tuples in derived.items()
    }
    return delta, rule_firings


def _run_inline(
    program: Program,
    database: dict,
    universe: list,
    constants: Mapping,
    stage_snapshots: list | None,
    profile,
    guard,
    checkpoint: Callable | None,
    resume,
    shard_count: int,
) -> int:
    """Single-process mode: the codegen round loop, optionally sharded.

    With ``shards=1`` (the default for one worker) partitioning
    short-circuits entirely, so the only cost over the codegen engine
    is this module's round bookkeeping -- the <= 15% E22 overhead gate.
    """
    from repro.datalog.evaluation import _EngineInterrupt, _record_round

    tracer = _trace.tracer
    m = _metrics.metrics
    idb = program.idb_predicates
    store = IndexedDatabase(database)
    tick = None if guard is None else guard.tick
    delta_functions = bind_delta_functions(program, store, constants)
    positions = _shard_positions(program) if shard_count > 1 else None
    m.gauge("parallel.workers", 1)

    iterations = 0
    delta: dict[str, set] = {}
    try:
        if resume is not None:
            iterations = resume.iteration
            delta = {p: set(resume.delta.get(p, ())) for p in idb}
        else:
            if guard is not None:
                guard.check_boundary()
            full_functions = bind_full_functions(program, store, constants)
            if profile is not None:
                profile.start_round()
            produced = 0
            per_rule: list[set] = []
            with tracer.span("iteration", engine="parallel", round=1):
                for rule_index, (rule, function) in enumerate(
                    zip(program.rules, full_functions)
                ):
                    _faults.faults.hit("rule")
                    with tracer.span(
                        "rule", rule=rule_index, head=rule.head.predicate
                    ) as span:
                        fired, fn_produced = function(
                            (), store.rows(rule.head.predicate), universe,
                            tick,
                        )
                        span.annotate(fired=len(fired))
                    produced += fn_produced
                    per_rule.append(fired)
            delta, rule_firings = _merge_round(
                program, per_rule, store.merge
            )
            iterations = 1
            m.inc("parallel.rounds")
            m.inc("parallel.shards", len(program.rules))
            m.inc(
                "parallel.merge_tuples",
                sum(len(rows) for rows in delta.values()),
            )
            _record_round(
                "parallel",
                {p: len(rows) for p, rows in delta.items()},
                rule_firings,
                produced,
                produced,
                profile,
                guard,
            )
            if stage_snapshots is not None:
                stage_snapshots.append(store.snapshot(idb))
            if checkpoint is not None:
                checkpoint(iterations, delta, store.snapshot(idb))

        while any(delta.values()):
            if guard is not None:
                guard.check_boundary()
            if profile is not None:
                profile.start_round()
            per_rule = [set() for __ in program.rules]
            produced = 0
            units = 0
            with tracer.span(
                "iteration", engine="parallel", round=iterations + 1
            ):
                for rule_index, (rule, functions) in enumerate(
                    zip(program.rules, delta_functions)
                ):
                    _faults.faults.hit("rule")
                    existing = store.rows(rule.head.predicate)
                    fired = per_rule[rule_index]
                    with tracer.span(
                        "rule", rule=rule_index, head=rule.head.predicate
                    ) as span:
                        for plan_pos, (predicate, function) in enumerate(
                            functions
                        ):
                            rows = delta[predicate]
                            if not rows:
                                continue
                            if shard_count == 1:
                                buckets = (rows,)
                            else:
                                buckets = partition_rows(
                                    rows, shard_count,
                                    positions[rule_index][plan_pos],
                                )
                            for bucket in buckets:
                                if not bucket:
                                    continue
                                start = time.perf_counter()
                                fn_fired, fn_produced = function(
                                    bucket, existing, universe, tick
                                )
                                m.observe(
                                    "parallel.worker_seconds",
                                    time.perf_counter() - start,
                                )
                                fired |= fn_fired
                                produced += fn_produced
                                units += 1
                        span.annotate(fired=len(fired))
            delta, rule_firings = _merge_round(
                program, per_rule, store.merge
            )
            iterations += 1
            m.inc("parallel.rounds")
            m.inc("parallel.shards", units)
            m.inc(
                "parallel.merge_tuples",
                sum(len(rows) for rows in delta.values()),
            )
            _record_round(
                "parallel",
                {p: len(rows) for p, rows in delta.items()},
                rule_firings,
                produced,
                produced,
                profile,
                guard,
            )
            if stage_snapshots is not None:
                stage_snapshots.append(store.snapshot(idb))
            if checkpoint is not None:
                checkpoint(iterations, delta, store.snapshot(idb))
    except GuardTrip as trip:
        for predicate in idb:
            database[predicate] = store.rows(predicate)
        raise _EngineInterrupt(trip, iterations, delta) from None

    for predicate in idb:
        database[predicate] = store.rows(predicate)
    return iterations


def _run_pool(
    program: Program,
    database: dict,
    universe: list,
    constants: Mapping,
    stage_snapshots: list | None,
    profile,
    guard,
    checkpoint: Callable | None,
    resume,
    workers: int,
    shard_count: int,
    interrupt_type,
) -> int:
    """Pool mode: fan rule x shard units out, barrier-merge each round.

    The coordinator keeps the authoritative database as the plain
    ``dict[str, set]`` it was handed (no indexes needed -- joins happen
    in the workers); workers advance in lockstep through broadcast
    ``merge`` messages, so at every dispatch their stores equal the
    coordinator's barrier state.
    """
    from repro.datalog.evaluation import _record_round

    tracer = _trace.tracer
    m = _metrics.metrics
    idb = program.idb_predicates
    positions = _shard_positions(program)
    pool = _acquire_pool(workers)
    epoch = pool.next_epoch()
    m.gauge("parallel.workers", workers)

    pool.broadcast((
        "init",
        epoch,
        program,
        {name: set(rows) for name, rows in database.items()},
        list(universe),
        dict(constants),
    ))
    order = bind_order(program)

    unit_ids = itertools.count()
    next_worker = itertools.count()

    def _hit_kill_sites(round_index: int) -> None:
        # One ``kill_worker`` hit per live worker per dispatched round,
        # in worker order -- the deterministic schedule the fault suite
        # enumerates.  An injected fault here is translated into a real
        # SIGKILL; the round is then dispatched normally and the death
        # surfaces through the collection path below.
        for worker in range(pool.workers):
            if not pool.alive(worker):
                continue
            try:
                _faults.faults.hit("kill_worker")
            except _faults.InjectedFault:
                pool.broken = True
                pool.kill(worker)

    def _collect(outstanding: dict, round_index: int) -> tuple[
        list[set], int
    ]:
        per_rule = [set() for __ in program.rules]
        produced = 0
        while outstanding:
            try:
                message = pool.results.get(timeout=_POLL_SECONDS)
            except _queue_module.Empty:
                for unit, worker in outstanding.items():
                    if not pool.alive(worker):
                        pool.broken = True
                        raise WorkerDied(worker, round_index)
                continue
            if message[0] == "error":
                # Never skipped by the epoch filter: a failure anywhere
                # in the pool (this run or a straggler) poisons it.
                pool.broken = True
                raise RuntimeError(
                    f"parallel worker {message[2]} failed:\n{message[3]}"
                )
            if message[1] != epoch:
                continue  # straggler from an interrupted earlier run
            __, __, worker, unit, rule_index, fired, fn_produced, secs = (
                message
            )
            outstanding.pop(unit, None)
            per_rule[rule_index] |= fired
            produced += fn_produced
            m.observe("parallel.worker_seconds", secs)
            m.observe(f"parallel.worker_seconds.{worker}", secs)
            if guard is not None:
                guard.tick(1)
        return per_rule, produced

    def _merge_rows(predicate: str, tuples: set) -> set:
        fresh = tuples - database[predicate]
        database[predicate] |= fresh
        return fresh

    iterations = 0
    delta: dict[str, set] = {}
    try:
        if resume is not None:
            iterations = resume.iteration
            delta = {p: set(resume.delta.get(p, ())) for p in idb}
        else:
            if guard is not None:
                guard.check_boundary()
            if profile is not None:
                profile.start_round()
            with tracer.span(
                "iteration", engine="parallel", round=1
            ) as span:
                _hit_kill_sites(1)
                outstanding: dict[int, int] = {}
                for rule_index in range(len(program.rules)):
                    _faults.faults.hit("rule")
                    unit = next(unit_ids)
                    worker = next(next_worker) % workers
                    outstanding[unit] = worker
                    pool.send(worker, ("full", epoch, unit, rule_index))
                units = len(outstanding)
                per_rule, produced = _collect(outstanding, 1)
                span.annotate(units=units, workers=workers)
            delta, rule_firings = _merge_round(
                program, per_rule, _merge_rows
            )
            merged = {p: rows for p, rows in delta.items() if rows}
            if merged:
                pool.broadcast(("merge", merged))
            iterations = 1
            m.inc("parallel.rounds")
            m.inc("parallel.shards", units)
            m.inc(
                "parallel.merge_tuples",
                sum(len(rows) for rows in delta.values()),
            )
            _record_round(
                "parallel",
                {p: len(rows) for p, rows in delta.items()},
                rule_firings,
                produced,
                produced,
                profile,
                guard,
            )
            if stage_snapshots is not None:
                stage_snapshots.append(_snapshot(database, idb))
            if checkpoint is not None:
                checkpoint(iterations, delta, _snapshot(database, idb))

        while any(delta.values()):
            if guard is not None:
                guard.check_boundary()
            if profile is not None:
                profile.start_round()
            with tracer.span(
                "iteration", engine="parallel", round=iterations + 1
            ) as span:
                _hit_kill_sites(iterations + 1)
                outstanding = {}
                for rule_index, functions in enumerate(order):
                    _faults.faults.hit("rule")
                    for plan_pos, predicate in functions:
                        rows = delta[predicate]
                        if not rows:
                            continue
                        buckets = partition_rows(
                            rows, shard_count,
                            positions[rule_index][plan_pos],
                        )
                        for bucket in buckets:
                            if not bucket:
                                continue
                            unit = next(unit_ids)
                            worker = next(next_worker) % workers
                            outstanding[unit] = worker
                            pool.send(worker, (
                                "delta", epoch, unit, rule_index,
                                plan_pos, bucket,
                            ))
                units = len(outstanding)
                per_rule, produced = _collect(outstanding, iterations + 1)
                span.annotate(units=units, workers=workers)
            delta, rule_firings = _merge_round(
                program, per_rule, _merge_rows
            )
            merged = {p: rows for p, rows in delta.items() if rows}
            if merged:
                pool.broadcast(("merge", merged))
            iterations += 1
            m.inc("parallel.rounds")
            m.inc("parallel.shards", units)
            m.inc(
                "parallel.merge_tuples",
                sum(len(rows) for rows in delta.values()),
            )
            _record_round(
                "parallel",
                {p: len(rows) for p, rows in delta.items()},
                rule_firings,
                produced,
                produced,
                profile,
                guard,
            )
            if stage_snapshots is not None:
                stage_snapshots.append(_snapshot(database, idb))
            if checkpoint is not None:
                checkpoint(iterations, delta, _snapshot(database, idb))
    except GuardTrip as trip:
        raise interrupt_type(trip, iterations, delta) from None

    return iterations


def bind_order(program: Program) -> list[tuple[tuple[int, str], ...]]:
    """Per rule: ``(plan_pos, delta predicate)`` in codegen binding
    order -- the coordinator's unit schedule must match the workers'
    ``bind_delta_functions`` indexing exactly."""
    idb = program.idb_predicates
    order = []
    for rule in program.rules:
        entries = []
        for plan_pos, plan in enumerate(plan_program_rules(rule, idb)):
            atom_index = plan.delta_atom_index
            entries.append(
                (plan_pos, rule.body_atoms()[atom_index].predicate)
            )
        order.append(tuple(entries))
    return order
