"""Bottom-up fixpoint evaluation of Datalog(!=) programs.

Five engines are provided and cross-validated against each other in
the test suite (plus a sixth, algebra-backed one in
:mod:`repro.datalog.algebra_engine`):

* **naive** -- iterate the paper's operator ``Theta`` from the empty
  interpretation; the intermediate interpretations are exactly the stages
  ``Theta^1 <= Theta^2 <= ...`` of Section 2, which Theorem 3.6 translates
  into ``L^{l+r}`` formulas;
* **semi-naive** -- the standard delta-driven optimisation, matching the
  naive engine round for round;
* **indexed** -- the default: semi-naive rounds executed through
  per-relation hash indexes (:mod:`repro.datalog.indexing`, built lazily
  per position signature, maintained incrementally as deltas merge) and
  greedily reordered rule bodies (:mod:`repro.datalog.planner`, delta
  occurrence first, constraints as early as their variables are bound);
* **codegen** -- the same plans *compiled to specialized Python
  functions* (:mod:`repro.datalog.codegen`): nested loops over index
  buckets with constraints inlined as ``if`` statements, eliminating
  the interpreter's per-op dispatch and per-binding list copies;
* **parallel** -- the codegen rounds sharded across a persistent
  ``multiprocessing`` worker pool (:mod:`repro.datalog.parallel`):
  each round's delta is hash-partitioned by the planner's first join
  key, rule-plan x shard units fan out to the workers, and shard
  deltas merge at a round barrier (``evaluate(..., method="parallel",
  workers=N)``; ``workers=1`` runs inline at codegen speed).

All these engines produce identical relations, goal answers, iteration
counts, and per-round stage snapshots -- the rounds of each engine are
the same sequence ``Theta^1 <= Theta^2 <= ...`` of Section 2, so the
Theorem 3.6 stage translations are engine-independent.

Variables range over the *universe* of the input structure (the paper
defines ``Theta_A(S) = {a : A, a |= phi(w, S)}`` with no range
restriction), so variables that occur only in the head or in constraints
are enumerated over the whole universe.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Iterator, Mapping

from repro.guard import (
    BudgetExceeded,
    CancellationToken,
    Checkpoint,
    EvaluationCancelled,
    EvaluationGuard,
    GuardTrip,
    RESUMABLE_ENGINES,
    ResourceBudget,
    edb_fingerprint,
    program_fingerprint,
)
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.obs.analyze import (
    PlanProfile,
    PlanStats,
    RuleStats,
    merge_node_counts,
)
from repro.testing import faults as _faults

from repro.datalog.ast import (
    Atom,
    Constant,
    Equality,
    Inequality,
    Program,
    Rule,
    Term,
    Variable,
)
from repro.datalog.codegen import bind_delta_functions, bind_full_functions
from repro.datalog.indexing import IndexedDatabase, hash_index
from repro.datalog.planner import (
    AtomStep,
    ConstraintStep,
    EnumerateStep,
    RulePlan,
    describe_step,
    plan_program_rules,
    plan_rule,
)
from repro.structures.structure import Structure

Element = Hashable
Database = dict[str, set]
Binding = dict[Variable, Element]

#: The engines accepted by :func:`evaluate`'s ``method`` parameter.
METHODS = ("indexed", "seminaive", "naive", "codegen", "parallel")


@dataclass(frozen=True)
class IterationProfile:
    """Observability record for one fixpoint round.

    ``delta_sizes`` and ``rule_firings`` are *semantic*: they depend only
    on the operator ``Theta``, not on the engine (see
    :meth:`EvaluationProfile.semantic_view`), so the differential harness
    pins them equal across engines.  ``bindings_enumerated``,
    ``tuples_produced``, and ``wall_seconds`` describe the work a
    particular engine did and legitimately differ.
    """

    index: int
    delta_sizes: Mapping[str, int]
    rule_firings: tuple[int, ...]
    bindings_enumerated: int
    tuples_produced: int
    wall_seconds: float

    @property
    def new_tuples(self) -> int:
        """Tuples first derived this round, across every IDB predicate."""
        return sum(self.delta_sizes.values())


@dataclass(frozen=True)
class EvaluationProfile:
    """Per-iteration observability for one fixpoint run.

    ``rule_firings[i]`` in each :class:`IterationProfile` counts the
    *distinct head tuples rule i derived that were new at that round* --
    a property of the stage sequence, so every engine reports the same
    numbers (a new tuple always has a derivation through the previous
    round's delta, hence semi-naive rewriting cannot miss it).
    """

    engine: str
    rule_labels: tuple[str, ...]
    iterations: tuple[IterationProfile, ...]
    #: EXPLAIN ANALYZE: per-plan-node runtime statistics, populated by
    #: ``evaluate(..., collect_analyze=True)`` on the plan engines
    #: (indexed / codegen); None otherwise.
    plans: PlanProfile | None = None

    def semantic_view(self) -> tuple:
        """The engine-independent part, for differential assertions."""
        return tuple(
            (
                tuple(sorted(iteration.delta_sizes.items())),
                iteration.rule_firings,
            )
            for iteration in self.iterations
        )

    def total_rule_firings(self) -> tuple[int, ...]:
        """Distinct-new-head counts per rule, summed over the run."""
        totals = [0] * len(self.rule_labels)
        for iteration in self.iterations:
            for index, count in enumerate(iteration.rule_firings):
                totals[index] += count
        return tuple(totals)

    def to_dict(self) -> dict:
        """JSON-serialisable form (benchmark rows, ``--stats``)."""
        return {
            "engine": self.engine,
            "rules": list(self.rule_labels),
            "iterations": [
                {
                    "round": iteration.index,
                    "delta_sizes": dict(iteration.delta_sizes),
                    "rule_firings": list(iteration.rule_firings),
                    "bindings_enumerated": iteration.bindings_enumerated,
                    "tuples_produced": iteration.tuples_produced,
                    "wall_seconds": iteration.wall_seconds,
                }
                for iteration in self.iterations
            ],
            "plans": None if self.plans is None else self.plans.to_dict(),
        }


@dataclass
class _ProfileBuilder:
    """Mutable accumulator the engines feed one round at a time."""

    rule_labels: tuple[str, ...]
    iterations: list[IterationProfile] = field(default_factory=list)
    _round_start: float = 0.0

    def start_round(self) -> None:
        self._round_start = time.perf_counter()

    def end_round(
        self,
        delta_sizes: Mapping[str, int],
        rule_firings: Iterable[int],
        bindings_enumerated: int,
        tuples_produced: int,
    ) -> None:
        self.iterations.append(
            IterationProfile(
                index=len(self.iterations) + 1,
                delta_sizes=dict(delta_sizes),
                rule_firings=tuple(rule_firings),
                bindings_enumerated=bindings_enumerated,
                tuples_produced=tuples_produced,
                wall_seconds=time.perf_counter() - self._round_start,
            )
        )

    def build(
        self, engine: str, plans: PlanProfile | None = None
    ) -> EvaluationProfile:
        return EvaluationProfile(
            engine=engine,
            rule_labels=self.rule_labels,
            iterations=tuple(self.iterations),
            plans=plans,
        )


def _profile_builder(program: Program) -> _ProfileBuilder:
    return _ProfileBuilder(tuple(str(rule) for rule in program.rules))


#: Engines that execute compiled rule plans and therefore support
#: ``collect_analyze`` (per-plan-node EXPLAIN ANALYZE statistics).
ANALYZE_ENGINES = ("indexed", "codegen")


@dataclass
class _PlanCounters:
    """Flat ``[rows_in, rows_out, ...]`` accumulator for one plan.

    Two slots per plan step, in step order -- the layout both plan
    executors write (the interpreter's ``node_stats`` parameter and the
    generated functions' ``_an`` parameter), so their counts are
    comparable element-for-element.
    """

    kind: str  # "full" | "delta"
    delta_predicate: str | None
    descriptors: tuple[tuple[str, str], ...]
    counts: list[int]
    invocations: int = 0

    def stats(self) -> PlanStats:
        return PlanStats(
            kind=self.kind,
            delta_predicate=self.delta_predicate,
            invocations=self.invocations,
            nodes=merge_node_counts(self.descriptors, self.counts),
        )


class _AnalyzeBuilder:
    """Mutable per-rule / per-plan-node accumulator behind
    ``collect_analyze``.

    Holds, for every rule, the full (round 1) plan's counters and one
    counter block per delta-specialised plan (in
    :func:`~repro.datalog.planner.plan_program_rules` order), plus the
    rule's accumulated wall time and firing count.  Both plan engines
    feed the same structure, so :meth:`build` yields
    :class:`~repro.obs.analyze.PlanProfile` objects whose
    ``counts_view()`` agrees across them.
    """

    __slots__ = ("full", "deltas", "wall", "fired", "labels", "heads")

    def __init__(self, program: Program) -> None:
        idb = program.idb_predicates
        self.full: list[_PlanCounters] = []
        self.deltas: list[tuple[_PlanCounters, ...]] = []
        for rule in program.rules:
            full_plan = plan_rule(rule)
            self.full.append(
                _PlanCounters(
                    kind="full",
                    delta_predicate=None,
                    descriptors=tuple(
                        describe_step(step) for step in full_plan.steps
                    ),
                    counts=[0] * (2 * len(full_plan.steps)),
                )
            )
            blocks = []
            for plan in plan_program_rules(rule, idb):
                predicate = rule.body_atoms()[plan.delta_atom_index].predicate
                blocks.append(
                    _PlanCounters(
                        kind="delta",
                        delta_predicate=predicate,
                        descriptors=tuple(
                            describe_step(step) for step in plan.steps
                        ),
                        counts=[0] * (2 * len(plan.steps)),
                    )
                )
            self.deltas.append(tuple(blocks))
        self.wall = [0.0] * len(program.rules)
        self.fired = [0] * len(program.rules)
        self.labels = tuple(str(rule) for rule in program.rules)
        self.heads = tuple(rule.head.predicate for rule in program.rules)

    def full_counts(self, rule_index: int) -> list[int]:
        block = self.full[rule_index]
        block.invocations += 1
        return block.counts

    def delta_counts(self, rule_index: int, plan_position: int) -> list[int]:
        block = self.deltas[rule_index][plan_position]
        block.invocations += 1
        return block.counts

    def add_wall(self, rule_index: int, seconds: float) -> None:
        self.wall[rule_index] += seconds

    def add_firings(self, rule_firings: Iterable[int]) -> None:
        for rule_index, count in enumerate(rule_firings):
            self.fired[rule_index] += count

    def build(self, engine: str, rounds: int) -> PlanProfile:
        rules = []
        for rule_index, full in enumerate(self.full):
            plans = (full.stats(),) + tuple(
                block.stats() for block in self.deltas[rule_index]
            )
            rules.append(
                RuleStats(
                    index=rule_index,
                    label=self.labels[rule_index],
                    head=self.heads[rule_index],
                    wall_seconds=self.wall[rule_index],
                    fired=self.fired[rule_index],
                    plans=plans,
                )
            )
        return PlanProfile(engine=engine, rounds=rounds, rules=tuple(rules))


@dataclass(frozen=True)
class FixpointResult:
    """The least fixpoint of a program on a structure.

    Attributes
    ----------
    relations:
        Final interpretation of every IDB predicate.
    goal:
        Name of the goal predicate.
    stages:
        When requested, the sequence ``Theta^1, Theta^2, ...`` (one dict of
        IDB relations per stage, cumulative, last equals ``relations``).
    iterations:
        Number of operator applications performed until stabilisation.
    profile:
        When requested (``collect_profile=True``), the per-iteration
        :class:`EvaluationProfile` -- delta sizes per IDB predicate,
        per-rule firing counts, bindings enumerated, wall time per round.
    """

    relations: Mapping[str, frozenset]
    goal: str
    stages: tuple[Mapping[str, frozenset], ...] | None
    iterations: int
    profile: EvaluationProfile | None = None

    @property
    def goal_relation(self) -> frozenset:
        """The relation computed for the goal predicate."""
        return self.relations[self.goal]

    def holds(self, arguments: tuple = ()) -> bool:
        """Whether the goal relation contains ``arguments``."""
        return tuple(arguments) in self.goal_relation


@dataclass(frozen=True)
class PartialFixpointResult(FixpointResult):
    """The state of an interrupted fixpoint run, at a round boundary.

    Datalog(!=) is monotone, so ``relations`` is a **sound
    under-approximation** of the true least fixpoint: every tuple in it
    is in the full answer (no wrong positives), the run simply stopped
    before deriving the rest.  Shape-compatible with
    :class:`FixpointResult` -- ``stages`` and ``profile`` cover the
    completed rounds -- plus the trip diagnosis.  Delivered as the
    ``partial`` attribute of :class:`repro.guard.BudgetExceeded`.
    """

    reason: str = ""
    limit: object = None
    spent: Mapping = field(default_factory=dict)


class _EngineInterrupt(Exception):
    """Internal: an engine caught :class:`GuardTrip` at a clean boundary.

    The engine guarantees ``database`` reflects the last *completed*
    round when this propagates; ``delta`` is that round's delta (the
    exact semi-naive resume state) and ``iterations`` the rounds done.
    """

    def __init__(self, trip: GuardTrip, iterations: int, delta: dict) -> None:
        self.trip = trip
        self.iterations = iterations
        self.delta = delta
        super().__init__(str(trip))


def _budget_error(
    trip: GuardTrip,
    partial: PartialFixpointResult,
    checkpoint: Checkpoint | None = None,
) -> BudgetExceeded:
    """The public exception for a trip (cancellation gets its subclass)."""
    cls = EvaluationCancelled if trip.reason == "cancelled" else BudgetExceeded
    return cls(trip.reason, trip.limit, trip.spent, partial, checkpoint)


def _resolve(term: Term, binding: Binding, constants: Mapping[str, Element]):
    """The element a term denotes under ``binding``; None if unbound."""
    if isinstance(term, Constant):
        try:
            return constants[term.name]
        except KeyError:
            raise ValueError(
                f"program mentions constant ${term.name} but the structure "
                "does not interpret it"
            ) from None
    return binding.get(term)


def _match_atom(
    atom: Atom,
    tuples: Iterable[tuple],
    bindings: list[Binding],
    constants: Mapping[str, Element],
) -> list[Binding]:
    """Join the current bindings with an atom over the given tuples.

    A hash join: for each set of argument positions already determined
    by a binding, the relation is indexed once on those positions, so
    each binding only touches the rows that can possibly match.
    """
    result: list[Binding] = []
    tuple_list = list(tuples)
    indexes: dict[tuple, dict[tuple, list[tuple]]] = {}
    for binding in bindings:
        bound_positions: list[int] = []
        key: list[Element] = []
        for position, term in enumerate(atom.args):
            value = _resolve(term, binding, constants)
            if value is not None:
                bound_positions.append(position)
                key.append(value)
        positions = tuple(bound_positions)
        index = indexes.get(positions)
        if index is None:
            index = hash_index(tuple_list, positions)
            indexes[positions] = index
        for row in index.get(tuple(key), ()):
            extended = _extend_binding(atom, row, binding, constants)
            if extended is not None:
                result.append(extended)
    return result


def _extend_binding(
    atom: Atom,
    row: tuple,
    binding: Binding,
    constants: Mapping[str, Element],
) -> Binding | None:
    """Extend ``binding`` so that ``atom`` matches ``row``; None on clash."""
    extended = dict(binding)
    for term, value in zip(atom.args, row):
        known = _resolve(term, extended, constants)
        if known is None:
            extended[term] = value  # term must be a Variable
        elif known != value:
            return None
    return extended


def _apply_ready_constraints(
    rule: Rule,
    bindings: list[Binding],
    constants: Mapping[str, Element],
    pending: set[int],
) -> list[Binding]:
    """Filter bindings by constraints whose terms are all determined.

    Equalities with exactly one bound side *bind* the other side instead
    of filtering.  ``pending`` holds indices (into ``rule.body``) of
    constraints not yet applied and is updated in place.
    """
    changed = True
    while changed and pending:
        changed = False
        for index in sorted(pending):
            literal = rule.body[index]
            left, right = literal.left, literal.right
            survivors: list[Binding] = []
            # Decide whether this constraint is ready for every binding:
            # constraints are ready when, for each binding, both sides are
            # resolvable -- or, for an equality, one side is.
            ready = True
            for binding in bindings:
                lv = _resolve(left, binding, constants)
                rv = _resolve(right, binding, constants)
                if lv is None and rv is None:
                    ready = False
                    break
                if isinstance(literal, Inequality) and (lv is None or rv is None):
                    ready = False
                    break
            if not ready:
                continue
            for binding in bindings:
                lv = _resolve(left, binding, constants)
                rv = _resolve(right, binding, constants)
                if isinstance(literal, Equality):
                    if lv is None:
                        extended = dict(binding)
                        extended[left] = rv
                        survivors.append(extended)
                    elif rv is None:
                        extended = dict(binding)
                        extended[right] = lv
                        survivors.append(extended)
                    elif lv == rv:
                        survivors.append(binding)
                else:
                    if lv != rv:
                        survivors.append(binding)
            bindings = survivors
            pending.discard(index)
            changed = True
    return bindings


def _rule_bindings(
    rule: Rule,
    database: Mapping[str, Iterable[tuple]],
    universe: Iterable[Element],
    constants: Mapping[str, Element],
    delta_index: int | None = None,
    delta: Iterable[tuple] | None = None,
) -> Iterator[Binding]:
    """All satisfying bindings for a rule body.

    When ``delta_index`` is given, the ``delta_index``-th relational atom
    is joined against ``delta`` instead of the full relation (the
    semi-naive trick).
    """
    bindings: list[Binding] = [{}]
    pending = {
        index
        for index, literal in enumerate(rule.body)
        if not isinstance(literal, Atom)
    }
    atom_position = 0
    for literal in rule.body:
        if not isinstance(literal, Atom):
            continue
        if atom_position == delta_index and delta is not None:
            rows: Iterable[tuple] = delta
        else:
            rows = database.get(literal.predicate, ())
        bindings = _match_atom(literal, rows, bindings, constants)
        if not bindings:
            return
        bindings = _apply_ready_constraints(rule, bindings, constants, pending)
        if not bindings:
            return
        atom_position += 1

    # Enumerate variables still unbound (head-only / constraint-only vars).
    # Atom matching and ready-constraint application bind the same
    # variable set in every surviving binding, so the free-variable list
    # and its universe product are computed once per rule, not once per
    # binding.
    needed = sorted(rule.variables())
    free = [v for v in needed if v not in bindings[0]]
    if not free:
        for binding in bindings:
            if _constraints_hold(rule, binding, constants):
                yield binding
        return
    free_product = list(
        itertools.product(list(universe), repeat=len(free))
    )
    for binding in bindings:
        for values in free_product:
            candidate = {**binding, **dict(zip(free, values))}
            if _constraints_hold(rule, candidate, constants):
                yield candidate


def _constraints_hold(
    rule: Rule, binding: Binding, constants: Mapping[str, Element]
) -> bool:
    for literal in rule.constraints():
        lv = _resolve(literal.left, binding, constants)
        rv = _resolve(literal.right, binding, constants)
        if isinstance(literal, Equality):
            if lv != rv:
                return False
        else:
            if lv == rv:
                return False
    return True


def _head_tuple(
    rule: Rule, binding: Binding, constants: Mapping[str, Element]
) -> tuple:
    values = []
    for term in rule.head.args:
        value = _resolve(term, binding, constants)
        if value is None:  # pragma: no cover - ruled out by enumeration
            raise RuntimeError(f"unbound head term {term} in rule {rule}")
        values.append(value)
    return tuple(values)


def _database_from_structure(
    program: Program,
    structure: Structure,
    extra_edb: Mapping[str, Iterable[tuple]] | None,
) -> tuple[Database, dict[str, Element]]:
    extra = {
        name: {tuple(t) for t in tuples}
        for name, tuples in (extra_edb or {}).items()
    }
    database: Database = {}
    for predicate in program.edb_predicates:
        if predicate in extra:
            database[predicate] = set(extra[predicate])
        elif structure.vocabulary.has_relation(predicate):
            database[predicate] = set(structure.relation(predicate))
        else:
            raise ValueError(
                f"EDB predicate {predicate!r} is interpreted neither by the "
                "structure nor by extra_edb"
            )
    constants = dict(structure.constants)
    missing = program.constants() - set(constants)
    if missing:
        raise ValueError(
            f"program mentions constants the structure does not interpret: "
            f"{sorted(missing)}"
        )
    return database, constants


def _apply_all_rules(
    program: Program,
    database: Mapping[str, Iterable[tuple]],
    universe: Iterable[Element],
    constants: Mapping[str, Element],
) -> dict[str, set]:
    """One application of the paper's operator Theta to ``database``."""
    derived: dict[str, set] = {p: set() for p in program.idb_predicates}
    per_rule, __ = _apply_rules_detailed(
        program, database, universe, constants
    )
    for rule, heads in zip(program.rules, per_rule):
        derived[rule.head.predicate] |= heads
    return derived


def _apply_rules_detailed(
    program: Program,
    database: Mapping[str, Iterable[tuple]],
    universe: Iterable[Element],
    constants: Mapping[str, Element],
) -> tuple[list[set], int]:
    """One operator application, kept per rule.

    Returns the derived head-tuple set of every rule (in rule order) and
    the total number of satisfying bindings enumerated -- the inputs the
    per-round profile needs.
    """
    tracer = _trace.tracer
    per_rule: list[set] = []
    bindings_enumerated = 0
    for rule_index, rule in enumerate(program.rules):
        _faults.faults.hit("rule")
        with tracer.span(
            "rule", rule=rule_index, head=rule.head.predicate
        ) as span:
            heads: set = set()
            count = 0
            for binding in _rule_bindings(
                rule, database, universe, constants
            ):
                heads.add(_head_tuple(rule, binding, constants))
                count += 1
            span.annotate(bindings=count, heads=len(heads))
        bindings_enumerated += count
        per_rule.append(heads)
    return per_rule, bindings_enumerated


def _snapshot(database: Database, idb: frozenset[str]) -> dict[str, frozenset]:
    return {p: frozenset(database.get(p, ())) for p in idb}


def evaluate(
    program: Program,
    structure: Structure,
    extra_edb: Mapping[str, Iterable[tuple]] | None = None,
    method: str = "indexed",
    collect_stages: bool = False,
    collect_profile: bool = False,
    collect_analyze: bool = False,
    budget: ResourceBudget | None = None,
    cancellation: CancellationToken | None = None,
    resume_from: Checkpoint | None = None,
    checkpoint_sink: Callable[[Checkpoint], None] | None = None,
    workers: int = 1,
    shards: int | None = None,
) -> FixpointResult:
    """Compute the least fixpoint ``pi^infty`` of a program on a structure.

    Parameters
    ----------
    program:
        The Datalog(!=) program.
    structure:
        Interprets every EDB predicate (unless overridden) and every
        constant the program mentions.
    extra_edb:
        Optional relation overrides/additions, e.g. feeding a previously
        computed predicate ``T`` into a follow-up program, as the proof of
        Theorem 6.1 does ("consider the following program in which T is
        viewed as an EDB predicate").
    method:
        ``"indexed"`` (default), ``"seminaive"``, ``"naive"``,
        ``"codegen"``, or ``"parallel"``.
    collect_stages:
        When true, record the cumulative stage relations after every
        round.  Rounds coincide across the engines, so the recorded
        sequence is the paper's ``Theta^1 <= Theta^2 <= ...`` whichever
        engine runs.
    collect_profile:
        When true, populate :attr:`FixpointResult.profile` with the
        per-iteration :class:`EvaluationProfile`.  The semantic parts
        (delta sizes, rule firings) are engine-independent.
    collect_analyze:
        When true (plan engines only -- :data:`ANALYZE_ENGINES`),
        additionally collect EXPLAIN ANALYZE statistics: per-plan-node
        rows in/out, per-plan invocation counts, per-rule wall time and
        firings, attached as ``result.profile.plans`` (a
        :class:`repro.obs.analyze.PlanProfile`; implies
        ``collect_profile``).  The counts are plan-level semantics, so
        the indexed and codegen engines report identical numbers.  On a
        resumed run the statistics cover the resumed rounds only
        (analyze state is not checkpointed).
    budget:
        Optional :class:`repro.guard.ResourceBudget`.  When a limit
        trips, :class:`repro.guard.BudgetExceeded` is raised carrying a
        :class:`PartialFixpointResult` (the sound under-approximation at
        the last completed round) and, when the state is resumable, a
        :class:`repro.guard.Checkpoint`.
    cancellation:
        Optional :class:`repro.guard.CancellationToken`; cooperative --
        checked at round boundaries and inside the indexed engine's join
        loops.  Raises :class:`repro.guard.EvaluationCancelled`.
    resume_from:
        A :class:`repro.guard.Checkpoint` from an earlier interrupted
        run of the *same* program on the *same* database (fingerprints
        verified, :class:`repro.guard.CheckpointMismatch` otherwise).
        Evaluation restarts mid-fixpoint and the final result --
        semantic profile view and stage sequence included -- is
        identical to an uninterrupted run.  Only the semi-naive,
        indexed, codegen, and parallel engines accept resumption (naive
        checkpoints *are* semi-naive state and resume under any of
        them).
    checkpoint_sink:
        Optional callable receiving a :class:`repro.guard.Checkpoint`
        after every completed round (on-demand checkpointing).
    workers:
        Worker-process count for ``method="parallel"`` (default 1 =
        inline, no processes).  Rejected for every other engine.
    shards:
        Hash-partition count per delta relation for
        ``method="parallel"`` (default: ``workers``).  Any value yields
        the same fixpoint -- shard merges are set unions -- which the
        metamorphic shard-invariance suite pins.
    """
    if method not in METHODS:
        raise ValueError(f"unknown evaluation method {method!r}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if shards is not None and shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if method != "parallel" and (workers != 1 or shards is not None):
        raise ValueError(
            "workers/shards apply only to method='parallel', "
            f"not {method!r}"
        )
    if collect_analyze:
        if method not in ANALYZE_ENGINES:
            raise ValueError(
                "collect_analyze requires a plan-based engine "
                f"({', '.join(ANALYZE_ENGINES)}), not {method!r}"
            )
        collect_profile = True
    database, constants = _database_from_structure(program, structure, extra_edb)
    universe = list(structure.universe)
    edb_relations = {p: database[p] for p in program.edb_predicates}
    for predicate in program.idb_predicates:
        database.setdefault(predicate, set())

    # Fingerprints bind checkpoints to (program, EDB); computed lazily so
    # guarded-but-never-tripped runs without checkpointing pay nothing.
    fingerprints: tuple[str, str] | None = None

    def _fps() -> tuple[str, str]:
        nonlocal fingerprints
        if fingerprints is None:
            fingerprints = (
                program_fingerprint(program),
                edb_fingerprint(edb_relations, universe, constants),
            )
        return fingerprints

    if resume_from is not None:
        if method not in RESUMABLE_ENGINES:
            raise ValueError(
                f"resume_from requires an engine in {RESUMABLE_ENGINES}, "
                f"not {method!r}"
            )
        resume_from.validate(*_fps())
        for predicate in program.idb_predicates:
            database[predicate] = set(resume_from.relations.get(predicate, ()))

    stage_snapshots: list[dict[str, frozenset]] | None = (
        [] if collect_stages else None
    )
    if stage_snapshots is not None and resume_from is not None:
        if resume_from.stages is None:
            raise ValueError(
                "collect_stages=True but the checkpoint carries no stage "
                "history; take checkpoints from a run with "
                "collect_stages=True"
            )
        stage_snapshots.extend(resume_from.stages)
    profile = _profile_builder(program) if collect_profile else None
    analyze = _AnalyzeBuilder(program) if collect_analyze else None
    if profile is not None and resume_from is not None:
        if resume_from.profile_rounds is None:
            raise ValueError(
                "collect_profile=True but the checkpoint carries no "
                "profile history; take checkpoints from a run with "
                "collect_profile=True"
            )
        profile.iterations.extend(resume_from.profile_rounds)

    guard: EvaluationGuard | None = None
    if budget is not None or cancellation is not None:
        guard = EvaluationGuard(budget, cancellation).start()

    emit: Callable | None = None
    if checkpoint_sink is not None:

        def emit(iteration: int, delta: Mapping, relations: Mapping) -> None:
            checkpoint_sink(
                _build_checkpoint(
                    method, program, _fps(), iteration, relations, delta,
                    stage_snapshots, profile,
                )
            )

    if method == "parallel":
        # Imported lazily: repro.datalog.parallel imports back into this
        # module for the shared round plumbing.
        import functools

        from repro.datalog.parallel import parallel_engine

        engine = functools.partial(
            parallel_engine, workers=workers, shards=shards
        )
    else:
        engine = {
            "naive": _naive,
            "seminaive": _seminaive,
            "indexed": _indexed,
            "codegen": _codegen,
        }[method]
    _metrics.metrics.inc("datalog.evaluations")
    with _trace.tracer.span(
        "evaluate", engine=method, goal=program.goal, rules=len(program.rules)
    ) as span:
        try:
            iterations = engine(
                program,
                database,
                universe,
                constants,
                stage_snapshots,
                profile,
                guard=guard,
                checkpoint=emit,
                resume=resume_from,
                analyze=analyze,
            )
        except _EngineInterrupt as interrupt:
            relations = _snapshot(database, program.idb_predicates)
            partial = PartialFixpointResult(
                relations=relations,
                goal=program.goal,
                stages=tuple(stage_snapshots) if collect_stages else None,
                iterations=interrupt.iterations,
                profile=None if profile is None else profile.build(
                    method,
                    None if analyze is None
                    else analyze.build(method, interrupt.iterations),
                ),
                reason=interrupt.trip.reason,
                limit=interrupt.trip.limit,
                spent=dict(interrupt.trip.spent),
            )
            checkpoint = None
            if interrupt.iterations > 0:
                checkpoint = _build_checkpoint(
                    method, program, _fps(), interrupt.iterations,
                    relations, interrupt.delta, stage_snapshots, profile,
                )
            span.annotate(interrupted=interrupt.trip.reason)
            raise _budget_error(interrupt.trip, partial, checkpoint) from None
        span.annotate(iterations=iterations)

    return FixpointResult(
        relations=_snapshot(database, program.idb_predicates),
        goal=program.goal,
        stages=tuple(stage_snapshots) if collect_stages else None,
        iterations=iterations,
        profile=None if profile is None else profile.build(
            method,
            None if analyze is None else analyze.build(method, iterations),
        ),
    )


def _build_checkpoint(
    method: str,
    program: Program,
    fps: tuple[str, str],
    iteration: int,
    relations: Mapping[str, Iterable[tuple]],
    delta: Mapping[str, Iterable[tuple]],
    stage_snapshots: list | None,
    profile: _ProfileBuilder | None,
) -> Checkpoint:
    """Package one round boundary's state as a checkpoint."""
    program_fp, edb_fp = fps
    return Checkpoint(
        engine=method,
        goal=program.goal,
        program_fingerprint=program_fp,
        edb_fingerprint=edb_fp,
        iteration=iteration,
        relations={p: frozenset(rows) for p, rows in relations.items()},
        delta={p: frozenset(rows) for p, rows in delta.items()},
        stages=None if stage_snapshots is None else tuple(stage_snapshots),
        profile_rounds=(
            None if profile is None else tuple(profile.iterations)
        ),
    )


def _record_round(
    engine: str,
    delta_sizes: Mapping[str, int],
    rule_firings: Iterable[int],
    bindings_enumerated: int,
    tuples_produced: int,
    profile: _ProfileBuilder | None,
    guard: EvaluationGuard | None = None,
) -> None:
    """Feed one round into the metrics registry, profile, and guard.

    Runs once per fixpoint round (never per binding); when metrics are
    disabled the calls hit the no-op singleton.  This is also the
    ``round`` fault site and where a guard accounts the round's semantic
    counters (limits are *checked* separately, at the top of the next
    round, so a run that converges exactly at a limit completes).
    """
    _faults.faults.hit("round")
    firings = (
        rule_firings if isinstance(rule_firings, list) else list(rule_firings)
    )
    m = _metrics.metrics
    m.inc("datalog.rounds")
    m.inc("datalog.rule_firings", sum(firings))
    m.inc("datalog.delta_tuples", sum(delta_sizes.values()))
    m.inc("datalog.bindings_enumerated", bindings_enumerated)
    m.inc("datalog.tuples_produced", tuples_produced)
    if guard is not None:
        guard.account_round(sum(delta_sizes.values()), sum(firings))
    if profile is not None:
        profile.end_round(
            delta_sizes, firings, bindings_enumerated, tuples_produced
        )


def _naive(
    program: Program,
    database: Database,
    universe: list,
    constants: Mapping[str, Element],
    stage_snapshots: list[dict[str, frozenset]] | None,
    profile: _ProfileBuilder | None = None,
    guard: EvaluationGuard | None = None,
    checkpoint: Callable | None = None,
    resume: Checkpoint | None = None,
    analyze: _AnalyzeBuilder | None = None,
) -> int:
    """Literal iteration of Theta; mutates ``database``; returns rounds.

    ``resume`` is rejected upstream (naive recomputes the full operator
    each round, so there is no saved delta to continue from), but naive
    runs *emit* checkpoints: the fresh-tuple sets it computes per round
    are exactly the semi-naive delta, so its checkpoints resume under
    the semi-naive/indexed engines.
    """
    tracer = _trace.tracer
    idb = program.idb_predicates
    iterations = 0
    delta: dict[str, set] = {}
    try:
        while True:
            if guard is not None:
                guard.check_boundary()
            if profile is not None:
                profile.start_round()
            with tracer.span(
                "iteration", engine="naive", round=iterations + 1
            ):
                per_rule, bindings = _apply_rules_detailed(
                    program, database, universe, constants
                )
            iterations += 1
            # Per-rule firings (distinct heads new this round) and per-IDB
            # delta sizes, both against the pre-merge database.
            rule_firings = [
                len(heads - database[rule.head.predicate])
                for rule, heads in zip(program.rules, per_rule)
            ]
            derived: dict[str, set] = {p: set() for p in idb}
            for rule, heads in zip(program.rules, per_rule):
                derived[rule.head.predicate] |= heads
            changed = False
            delta = {}
            for predicate, tuples in derived.items():
                fresh = tuples - database[predicate]
                delta[predicate] = fresh
                if fresh:
                    changed = True
                database[predicate] = database[predicate] | tuples
            _record_round(
                "naive",
                {p: len(rows) for p, rows in delta.items()},
                rule_firings,
                bindings,
                bindings,
                profile,
                guard,
            )
            if stage_snapshots is not None:
                stage_snapshots.append(_snapshot(database, idb))
            if checkpoint is not None:
                checkpoint(iterations, delta, _snapshot(database, idb))
            if not changed:
                return iterations
    except GuardTrip as trip:
        raise _EngineInterrupt(trip, iterations, delta) from None


def _round_one_from_detail(
    program: Program,
    database: Database,
    per_rule: list[set],
    bindings: int,
    profile: _ProfileBuilder | None,
    engine: str,
    guard: EvaluationGuard | None = None,
) -> dict[str, set]:
    """Merge round 1's per-rule derivations; returns the first delta."""
    idb = program.idb_predicates
    rule_firings = [
        len(heads - database[rule.head.predicate])
        for rule, heads in zip(program.rules, per_rule)
    ]
    derived: dict[str, set] = {p: set() for p in idb}
    for rule, heads in zip(program.rules, per_rule):
        derived[rule.head.predicate] |= heads
    delta: dict[str, set] = {}
    for predicate, tuples in derived.items():
        fresh = tuples - database[predicate]
        database[predicate] |= fresh
        delta[predicate] = fresh
    _record_round(
        engine,
        {p: len(rows) for p, rows in delta.items()},
        rule_firings,
        bindings,
        bindings,
        profile,
        guard,
    )
    return delta


def _seminaive(
    program: Program,
    database: Database,
    universe: list,
    constants: Mapping[str, Element],
    stage_snapshots: list[dict[str, frozenset]] | None = None,
    profile: _ProfileBuilder | None = None,
    guard: EvaluationGuard | None = None,
    checkpoint: Callable | None = None,
    resume: Checkpoint | None = None,
    analyze: _AnalyzeBuilder | None = None,
) -> int:
    """Delta-driven evaluation; mutates ``database``; returns iterations.

    The loop state at a round boundary is exactly ``(database, delta,
    iterations)`` -- what a :class:`repro.guard.Checkpoint` carries --
    so ``resume`` skips the bootstrap and re-enters the while loop as if
    the interrupted run had never stopped.  Database mutation happens
    only at boundaries (the merge after the per-rule loop), so a
    :class:`GuardTrip` or injected crash mid-round leaves the last
    completed round's state intact.
    """
    tracer = _trace.tracer
    idb = program.idb_predicates
    iterations = 0
    delta: dict[str, set] = {}
    try:
        if resume is not None:
            iterations = resume.iteration
            delta = {p: set(resume.delta.get(p, ())) for p in idb}
        else:
            if guard is not None:
                guard.check_boundary()
            # Initial round: every rule against the EDB-only database.
            if profile is not None:
                profile.start_round()
            with tracer.span("iteration", engine="seminaive", round=1):
                per_rule, bindings = _apply_rules_detailed(
                    program, database, universe, constants
                )
            delta = _round_one_from_detail(
                program, database, per_rule, bindings, profile, "seminaive",
                guard,
            )
            iterations = 1
            if stage_snapshots is not None:
                stage_snapshots.append(_snapshot(database, idb))
            if checkpoint is not None:
                checkpoint(iterations, delta, _snapshot(database, idb))

        while any(delta.values()):
            if guard is not None:
                guard.check_boundary()
            if profile is not None:
                profile.start_round()
            new_delta: dict[str, set] = {p: set() for p in idb}
            rule_firings: list[int] = []
            bindings = 0
            with tracer.span(
                "iteration", engine="seminaive", round=iterations + 1
            ):
                for rule_index, rule in enumerate(program.rules):
                    _faults.faults.hit("rule")
                    atoms = rule.body_atoms()
                    idb_positions = [
                        index
                        for index, atom in enumerate(atoms)
                        if atom.predicate in idb
                    ]
                    if not idb_positions:
                        # EDB-only rules contribute nothing after round 1.
                        rule_firings.append(0)
                        continue
                    existing = database[rule.head.predicate]
                    fired: set = set()
                    with tracer.span(
                        "rule", rule=rule_index, head=rule.head.predicate
                    ) as span:
                        for position in idb_positions:
                            predicate = atoms[position].predicate
                            if not delta[predicate]:
                                continue
                            for binding in _rule_bindings(
                                rule,
                                database,
                                universe,
                                constants,
                                delta_index=position,
                                delta=delta[predicate],
                            ):
                                bindings += 1
                                head = _head_tuple(rule, binding, constants)
                                if head not in existing:
                                    fired.add(head)
                        span.annotate(fired=len(fired))
                    new_delta[rule.head.predicate] |= fired
                    rule_firings.append(len(fired))
            for predicate, tuples in new_delta.items():
                database[predicate] |= tuples
            delta = new_delta
            iterations += 1
            _record_round(
                "seminaive",
                {p: len(rows) for p, rows in delta.items()},
                rule_firings,
                bindings,
                bindings,
                profile,
                guard,
            )
            if stage_snapshots is not None:
                stage_snapshots.append(_snapshot(database, idb))
            if checkpoint is not None:
                checkpoint(iterations, delta, _snapshot(database, idb))
        return iterations
    except GuardTrip as trip:
        raise _EngineInterrupt(trip, iterations, delta) from None


# ---------------------------------------------------------------------------
# The indexed engine: plans from repro.datalog.planner, compiled to
# slot-addressed ops and executed against the incrementally-indexed
# store of repro.datalog.indexing.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _CompiledPlan:
    """A plan lowered onto integer slots for one (rule, constants) pair.

    Bindings become flat lists indexed by slot instead of
    Variable-keyed dicts -- the hot loops never hash a Variable.  Each
    op is a tuple whose first element is its kind:

    * ``("atom", predicate, is_delta, bound_positions, key_sources,
      writes, checks)`` -- index lookup; ``key_sources`` are
      ``(from_slot, slot_or_value)`` pairs, ``writes``/``checks`` are
      ``(row_position, slot)`` pairs (checks handle variables repeated
      within the atom);
    * ``("bind", slot, source)`` -- equality assigning a fresh slot;
    * ``("eq" | "neq", left_source, right_source)`` -- filters;
    * ``("enum", slot)`` -- universe sweep into a fresh slot.

    ``slots`` records the Variable -> slot assignment the compilation
    produced; the incremental-maintenance layer
    (:mod:`repro.datalog.incremental`) uses it to recover the ground
    body-atom rows of each satisfying binding (derivation supports).
    """

    plan: RulePlan
    ops: tuple[tuple, ...]
    slot_count: int
    head: tuple  # per head position: (from_slot, slot_or_value)
    slots: tuple[tuple[Variable, int], ...] = ()


def _compile_plan(
    plan: RulePlan, constants: Mapping[str, Element]
) -> _CompiledPlan:
    slots: dict[Variable, int] = {}

    def source_of(term: Term) -> tuple[bool, object]:
        if isinstance(term, Constant):
            return (False, _resolve(term, {}, constants))
        return (True, slots[term])

    ops: list[tuple] = []
    for step in plan.steps:
        if isinstance(step, AtomStep):
            atom = step.atom
            bound = set(step.bound_positions)
            key_sources = tuple(
                source_of(atom.args[i]) for i in step.bound_positions
            )
            writes: list[tuple[int, int]] = []
            checks: list[tuple[int, int]] = []
            for position, term in enumerate(atom.args):
                if position in bound:
                    continue
                # An unbound position is always a Variable; a slot can
                # already exist only via a repeat within this atom.
                if term in slots:
                    checks.append((position, slots[term]))
                else:
                    slots[term] = len(slots)
                    writes.append((position, slots[term]))
            ops.append(
                (
                    "atom",
                    atom.predicate,
                    step.is_delta,
                    step.bound_positions,
                    key_sources,
                    tuple(writes),
                    tuple(checks),
                )
            )
        elif isinstance(step, ConstraintStep):
            literal = step.literal
            if step.binds is not None:
                other = (
                    literal.right
                    if step.binds == literal.left
                    else literal.left
                )
                source = source_of(other)
                slots[step.binds] = len(slots)
                ops.append(("bind", slots[step.binds], source))
            else:
                kind = "eq" if isinstance(literal, Equality) else "neq"
                ops.append(
                    (kind, source_of(literal.left), source_of(literal.right))
                )
        else:  # EnumerateStep
            slots[step.variable] = len(slots)
            ops.append(("enum", slots[step.variable]))

    head = tuple(source_of(term) for term in plan.rule.head.args)
    return _CompiledPlan(
        plan, tuple(ops), len(slots), head, tuple(slots.items())
    )


def _run_plan(
    compiled: _CompiledPlan,
    store: IndexedDatabase,
    universe: list,
    delta_rows: Iterable[tuple] | None = None,
    guard: EvaluationGuard | None = None,
    node_stats: list[int] | None = None,
) -> Iterator[list]:
    """All satisfying slot bindings for a compiled plan.

    ``delta_rows`` feeds the plan's ``is_delta`` atom op (present
    exactly when the plan was built with a ``delta_atom_index``).

    ``guard`` receives one :meth:`~repro.guard.EvaluationGuard.tick` per
    atom op, weighted by the binding batch it probes with -- a cheap
    in-round pulse (stride-checked deadline/cancellation inside the
    guard) so a single enormous round cannot outlive its deadline by a
    whole round's length.  Kept per *operator*, never per binding, like
    the index telemetry below.

    ``node_stats`` (EXPLAIN ANALYZE, ``collect_analyze=True``) is a
    flat ``[rows_in, rows_out, ...]`` list with two slots per op, in op
    order, accumulated across invocations.  Rows in/out are batch
    lengths taken around each op -- one pair of additions per *op*, so
    the never-enabled path costs one ``is not None`` test per op, not
    per binding.
    """
    bindings: list[list] = [[None] * compiled.slot_count]
    for op_index, op in enumerate(compiled.ops):
        kind = op[0]
        if node_stats is not None:
            node_stats[2 * op_index] += len(bindings)
        if kind == "atom":
            __, predicate, is_delta, positions, key_sources, writes, checks = op
            _faults.faults.hit("probe")
            if guard is not None:
                guard.tick(len(bindings))
            if is_delta:
                # Deltas are per-round and small: a one-shot index.
                lookup = hash_index(delta_rows or (), positions).get
            else:
                lookup = store.relation(predicate).index_for(positions).get
            new_bindings: list[list] = []
            for binding in bindings:
                key = tuple(
                    binding[value] if from_slot else value
                    for from_slot, value in key_sources
                )
                for row in lookup(key, ()):
                    extended = binding.copy()
                    for position, slot in writes:
                        extended[slot] = row[position]
                    for position, slot in checks:
                        if extended[slot] != row[position]:
                            break
                    else:
                        new_bindings.append(extended)
            # Aggregate index telemetry: one call per atom op, never per
            # probe, so the disabled path stays flat.
            m = _metrics.metrics
            m.inc(
                "index.delta_probes" if is_delta else "index.probes",
                len(bindings),
            )
            m.inc("index.bindings_extended", len(new_bindings))
            bindings = new_bindings
        elif kind == "bind":
            __, slot, (from_slot, value) = op
            for binding in bindings:
                binding[slot] = binding[value] if from_slot else value
        elif kind == "enum":
            slot = op[1]
            swept: list[list] = []
            for binding in bindings:
                for element in universe:
                    extended = binding.copy()
                    extended[slot] = element
                    swept.append(extended)
            bindings = swept
        else:  # "eq" / "neq"
            __, (left_slot, left), (right_slot, right) = op
            wanted = kind == "eq"
            bindings = [
                binding
                for binding in bindings
                if (
                    (binding[left] if left_slot else left)
                    == (binding[right] if right_slot else right)
                )
                is wanted
            ]
        if node_stats is not None:
            node_stats[2 * op_index + 1] += len(bindings)
        if not bindings:
            return iter(())
    return iter(bindings)


def _plan_heads(
    compiled: _CompiledPlan,
    store: IndexedDatabase,
    universe: list,
    delta_rows: Iterable[tuple] | None = None,
    guard: EvaluationGuard | None = None,
    node_stats: list[int] | None = None,
) -> Iterator[tuple]:
    """Head tuples derived by one compiled plan."""
    head = compiled.head
    for binding in _run_plan(
        compiled, store, universe, delta_rows, guard, node_stats
    ):
        yield tuple(
            binding[value] if from_slot else value
            for from_slot, value in head
        )


def _indexed(
    program: Program,
    database: Database,
    universe: list,
    constants: Mapping[str, Element],
    stage_snapshots: list[dict[str, frozenset]] | None = None,
    profile: _ProfileBuilder | None = None,
    guard: EvaluationGuard | None = None,
    checkpoint: Callable | None = None,
    resume: Checkpoint | None = None,
    analyze: _AnalyzeBuilder | None = None,
) -> int:
    """Index-backed semi-naive evaluation; mutates ``database``.

    Round-for-round identical to :func:`_seminaive`: round 1 applies
    every rule to the EDB-only store, later rounds re-derive only
    through the delta-specialised plans, and the iteration count is the
    number of rounds until the delta empties.  ``resume`` seeds the
    store from checkpointed relations (the caller already merged them
    into ``database``) and re-enters the delta loop directly; the store
    mutates only at round boundaries, so trips and crashes mid-round
    cannot expose a half-merged state.

    Observability discipline: the per-head/per-binding loops stay free
    of instrumentation; only when ``collect_profile`` is requested does
    the counting variant of the loop run, so the disabled path executes
    the pre-instrumentation inner loops plus a handful of per-round
    no-op metric calls.
    """
    tracer = _trace.tracer
    idb = program.idb_predicates
    store = IndexedDatabase(database)
    delta_plans = [
        tuple(
            _compile_plan(plan, constants)
            for plan in plan_program_rules(rule, idb)
        )
        for rule in program.rules
    ]

    iterations = 0
    delta: dict[str, set] = {}
    try:
        if resume is not None:
            iterations = resume.iteration
            delta = {p: set(resume.delta.get(p, ())) for p in idb}
        else:
            if guard is not None:
                guard.check_boundary()
            full_plans = [
                _compile_plan(plan_rule(rule), constants)
                for rule in program.rules
            ]
            # Initial round: every rule against the EDB-only store.
            if profile is not None:
                profile.start_round()
            produced = 0
            per_rule: list[set] = []
            with tracer.span("iteration", engine="indexed", round=1):
                for rule_index, (rule, compiled) in enumerate(
                    zip(program.rules, full_plans)
                ):
                    _faults.faults.hit("rule")
                    if profile is None:
                        heads = set(
                            _plan_heads(compiled, store, universe, guard=guard)
                        )
                    else:
                        node_stats = None
                        if analyze is not None:
                            node_stats = analyze.full_counts(rule_index)
                            rule_start = time.perf_counter()
                        heads = set()
                        for head in _plan_heads(
                            compiled, store, universe, guard=guard,
                            node_stats=node_stats,
                        ):
                            heads.add(head)
                            produced += 1
                        if analyze is not None:
                            analyze.add_wall(
                                rule_index,
                                time.perf_counter() - rule_start,
                            )
                    per_rule.append(heads)
            rule_firings = [
                len(heads - store.rows(rule.head.predicate))
                for rule, heads in zip(program.rules, per_rule)
            ]
            if analyze is not None:
                analyze.add_firings(rule_firings)
            derived: dict[str, set] = {p: set() for p in idb}
            for rule, heads in zip(program.rules, per_rule):
                derived[rule.head.predicate] |= heads
            delta = {}
            for predicate, tuples in derived.items():
                delta[predicate] = store.merge(predicate, tuples)
            iterations = 1
            _record_round(
                "indexed",
                {p: len(rows) for p, rows in delta.items()},
                rule_firings,
                produced,
                produced,
                profile,
                guard,
            )
            if stage_snapshots is not None:
                stage_snapshots.append(store.snapshot(idb))
            if checkpoint is not None:
                checkpoint(iterations, delta, store.snapshot(idb))

        while any(delta.values()):
            if guard is not None:
                guard.check_boundary()
            if profile is not None:
                profile.start_round()
            new_derived: dict[str, set] = {p: set() for p in idb}
            rule_firings = []
            produced = 0
            with tracer.span(
                "iteration", engine="indexed", round=iterations + 1
            ):
                for rule_index, (rule, compiled_deltas) in enumerate(
                    zip(program.rules, delta_plans)
                ):
                    _faults.faults.hit("rule")
                    existing = store.rows(rule.head.predicate)
                    fired: set = set()
                    if analyze is not None:
                        rule_start = time.perf_counter()
                    with tracer.span(
                        "rule", rule=rule_index, head=rule.head.predicate
                    ) as span:
                        for plan_pos, compiled in enumerate(compiled_deltas):
                            delta_index = compiled.plan.delta_atom_index
                            assert delta_index is not None
                            predicate = rule.body_atoms()[
                                delta_index
                            ].predicate
                            rows = delta[predicate]
                            if not rows:
                                continue
                            if profile is None:
                                for head in _plan_heads(
                                    compiled,
                                    store,
                                    universe,
                                    delta_rows=rows,
                                    guard=guard,
                                ):
                                    if head not in existing:
                                        fired.add(head)
                            else:
                                node_stats = None
                                if analyze is not None:
                                    node_stats = analyze.delta_counts(
                                        rule_index, plan_pos
                                    )
                                for head in _plan_heads(
                                    compiled,
                                    store,
                                    universe,
                                    delta_rows=rows,
                                    guard=guard,
                                    node_stats=node_stats,
                                ):
                                    produced += 1
                                    if head not in existing:
                                        fired.add(head)
                        span.annotate(fired=len(fired))
                    if analyze is not None:
                        analyze.add_wall(
                            rule_index, time.perf_counter() - rule_start
                        )
                    new_derived[rule.head.predicate] |= fired
                    rule_firings.append(len(fired))
            if analyze is not None:
                analyze.add_firings(rule_firings)
            delta = {
                predicate: store.merge(predicate, tuples)
                for predicate, tuples in new_derived.items()
            }
            iterations += 1
            _record_round(
                "indexed",
                {p: len(rows) for p, rows in delta.items()},
                rule_firings,
                produced,
                produced,
                profile,
                guard,
            )
            if stage_snapshots is not None:
                stage_snapshots.append(store.snapshot(idb))
            if checkpoint is not None:
                checkpoint(iterations, delta, store.snapshot(idb))
    except GuardTrip as trip:
        # Store state is at the last completed boundary; surface it in
        # the caller's database before reporting the interrupt.
        for predicate in idb:
            database[predicate] = store.rows(predicate)
        raise _EngineInterrupt(trip, iterations, delta) from None

    # The store adopted copies of the database's row sets; write the
    # final interpretations back so the caller's snapshot sees them.
    for predicate in idb:
        database[predicate] = store.rows(predicate)
    return iterations


def _codegen(
    program: Program,
    database: Database,
    universe: list,
    constants: Mapping[str, Element],
    stage_snapshots: list[dict[str, frozenset]] | None = None,
    profile: _ProfileBuilder | None = None,
    guard: EvaluationGuard | None = None,
    checkpoint: Callable | None = None,
    resume: Checkpoint | None = None,
    analyze: _AnalyzeBuilder | None = None,
) -> int:
    """Generated-code semi-naive evaluation; mutates ``database``.

    The same round structure as :func:`_indexed` -- round 1 applies
    every rule's full plan to the EDB-only store, later rounds only the
    delta-specialised plans -- but each plan runs as a specialized
    Python function emitted by :mod:`repro.datalog.codegen` instead of
    through the op interpreter.  The functions read the store's
    incrementally-maintained index buckets directly (bound once, before
    round 1: bucket dicts are updated in place as deltas merge), return
    ``(fired, produced)``, and tick the guard once per outermost-loop
    row, so checkpoints, trips, spans, and the semantic profile view are
    indistinguishable from the other engines'.
    """
    tracer = _trace.tracer
    idb = program.idb_predicates
    store = IndexedDatabase(database)
    tick = None if guard is None else guard.tick
    delta_functions = bind_delta_functions(
        program, store, constants, analyze=analyze is not None
    )

    iterations = 0
    delta: dict[str, set] = {}
    try:
        if resume is not None:
            iterations = resume.iteration
            delta = {p: set(resume.delta.get(p, ())) for p in idb}
        else:
            if guard is not None:
                guard.check_boundary()
            full_functions = bind_full_functions(
                program, store, constants, analyze=analyze is not None
            )
            # Initial round: every rule against the EDB-only store.
            if profile is not None:
                profile.start_round()
            produced = 0
            per_rule: list[set] = []
            with tracer.span("iteration", engine="codegen", round=1):
                for rule_index, (rule, function) in enumerate(
                    zip(program.rules, full_functions)
                ):
                    _faults.faults.hit("rule")
                    if analyze is None:
                        fired, fn_produced = function(
                            (), store.rows(rule.head.predicate), universe,
                            tick,
                        )
                    else:
                        rule_start = time.perf_counter()
                        fired, fn_produced = function(
                            (), store.rows(rule.head.predicate), universe,
                            tick, analyze.full_counts(rule_index),
                        )
                        analyze.add_wall(
                            rule_index, time.perf_counter() - rule_start
                        )
                    produced += fn_produced
                    per_rule.append(fired)
            # The functions already exclude pre-round rows, so each
            # fired set is exactly the rule's distinct-new head count.
            rule_firings = [len(fired) for fired in per_rule]
            if analyze is not None:
                analyze.add_firings(rule_firings)
            derived: dict[str, set] = {p: set() for p in idb}
            for rule, fired in zip(program.rules, per_rule):
                derived[rule.head.predicate] |= fired
            delta = {}
            for predicate, tuples in derived.items():
                delta[predicate] = store.merge(predicate, tuples)
            iterations = 1
            _record_round(
                "codegen",
                {p: len(rows) for p, rows in delta.items()},
                rule_firings,
                produced,
                produced,
                profile,
                guard,
            )
            if stage_snapshots is not None:
                stage_snapshots.append(store.snapshot(idb))
            if checkpoint is not None:
                checkpoint(iterations, delta, store.snapshot(idb))

        while any(delta.values()):
            if guard is not None:
                guard.check_boundary()
            if profile is not None:
                profile.start_round()
            new_derived = {p: set() for p in idb}
            rule_firings = []
            produced = 0
            with tracer.span(
                "iteration", engine="codegen", round=iterations + 1
            ):
                for rule_index, (rule, functions) in enumerate(
                    zip(program.rules, delta_functions)
                ):
                    _faults.faults.hit("rule")
                    existing = store.rows(rule.head.predicate)
                    fired: set = set()
                    if analyze is not None:
                        rule_start = time.perf_counter()
                    with tracer.span(
                        "rule", rule=rule_index, head=rule.head.predicate
                    ) as span:
                        for plan_pos, (predicate, function) in enumerate(
                            functions
                        ):
                            rows = delta[predicate]
                            if not rows:
                                continue
                            if analyze is None:
                                fn_fired, fn_produced = function(
                                    rows, existing, universe, tick
                                )
                            else:
                                fn_fired, fn_produced = function(
                                    rows, existing, universe, tick,
                                    analyze.delta_counts(
                                        rule_index, plan_pos
                                    ),
                                )
                            fired |= fn_fired
                            produced += fn_produced
                        span.annotate(fired=len(fired))
                    if analyze is not None:
                        analyze.add_wall(
                            rule_index, time.perf_counter() - rule_start
                        )
                    new_derived[rule.head.predicate] |= fired
                    rule_firings.append(len(fired))
            if analyze is not None:
                analyze.add_firings(rule_firings)
            delta = {
                predicate: store.merge(predicate, tuples)
                for predicate, tuples in new_derived.items()
            }
            iterations += 1
            _record_round(
                "codegen",
                {p: len(rows) for p, rows in delta.items()},
                rule_firings,
                produced,
                produced,
                profile,
                guard,
            )
            if stage_snapshots is not None:
                stage_snapshots.append(store.snapshot(idb))
            if checkpoint is not None:
                checkpoint(iterations, delta, store.snapshot(idb))
    except GuardTrip as trip:
        # Store state is at the last completed boundary; surface it in
        # the caller's database before reporting the interrupt.
        for predicate in idb:
            database[predicate] = store.rows(predicate)
        raise _EngineInterrupt(trip, iterations, delta) from None

    for predicate in idb:
        database[predicate] = store.rows(predicate)
    return iterations


def stages(
    program: Program,
    structure: Structure,
    extra_edb: Mapping[str, Iterable[tuple]] | None = None,
) -> tuple[Mapping[str, frozenset], ...]:
    """The paper's stage sequence ``Theta^1, Theta^2, ...`` (cumulative).

    The final entry is the least fixpoint; by the paper's Section 2
    discussion the sequence stabilises after at most ``|A|^r`` steps.
    Computed with the naive engine -- the literal operator iteration of
    Section 2 -- though every engine records the identical sequence (a
    property the differential tests pin).
    """
    result = evaluate(
        program,
        structure,
        extra_edb=extra_edb,
        method="naive",
        collect_stages=True,
    )
    assert result.stages is not None
    return result.stages


#: Engines accepted by :func:`query` -- :data:`METHODS` plus the
#: algebra engine of :mod:`repro.datalog.algebra_engine`.
QUERY_ENGINES = METHODS + ("algebra",)


@dataclass(frozen=True)
class QueryResult:
    """Goal-directed query outcome (see :func:`query`).

    Attributes
    ----------
    answers:
        The goal tuples (full arity) consistent with the goal atom's
        binding -- identical with and without the magic rewrite.
    goal_atom:
        The binding queried.
    magic:
        Whether the magic-sets rewrite ran.
    result:
        The underlying :class:`FixpointResult` (of the rewritten program
        when ``magic`` is true).
    rewrite:
        The :class:`repro.datalog.magic.MagicRewrite`, or ``None`` for
        direct evaluation.
    """

    answers: frozenset
    goal_atom: Atom
    magic: bool
    result: FixpointResult
    rewrite: object | None = None

    @property
    def holds(self) -> bool:
        """Whether any goal tuple matches the binding."""
        return bool(self.answers)

    @property
    def derived_tuples(self) -> int:
        """Total tuples the run derived, across every IDB predicate.

        For a magic run this counts adorned and magic tuples -- the
        work actually done -- which the bench harness compares against
        the full fixpoint's count.
        """
        return sum(len(rows) for rows in self.result.relations.values())


def query(
    program: Program,
    structure: Structure,
    goal_atom: Atom,
    extra_edb: Mapping[str, Iterable[tuple]] | None = None,
    engine: str = "indexed",
    magic: bool = True,
    collect_profile: bool = False,
    collect_analyze: bool = False,
    budget: ResourceBudget | None = None,
    cancellation: CancellationToken | None = None,
) -> QueryResult:
    """Evaluate one goal binding, goal-directedly by default.

    ``goal_atom`` is an atom over an IDB predicate (normally the goal)
    whose arguments mix :class:`Constant` (bound -- the structure must
    interpret the name) and :class:`Variable` (free); repeated variables
    require equal values.  With ``magic=True`` (default) the program is
    first rewritten by :func:`repro.datalog.magic.magic_rewrite`, so
    evaluation touches only the facts the binding demands; with
    ``magic=False`` the full fixpoint is computed and filtered.  The
    ``answers`` are identical either way -- the property-based
    equivalence harness pins this for all engines.

    ``engine`` is one of :data:`QUERY_ENGINES` (``"algebra"`` routes to
    :func:`repro.datalog.algebra_engine.evaluate_algebra`).
    ``collect_analyze`` attaches EXPLAIN ANALYZE plan statistics to the
    underlying fixpoint's profile exactly as in :func:`evaluate`
    (plan engines only).

    ``budget`` / ``cancellation`` guard the underlying fixpoint exactly
    as in :func:`evaluate`; on exhaustion the raised
    :class:`repro.guard.BudgetExceeded` carries the partial fixpoint of
    the program actually run (the magic rewrite when ``magic=True``).
    """
    from repro.datalog.magic import goal_matches, magic_rewrite

    if engine not in QUERY_ENGINES:
        raise ValueError(
            f"unknown query engine {engine!r} "
            f"(choose from {', '.join(QUERY_ENGINES)})"
        )
    if goal_atom.predicate not in program.idb_predicates:
        raise ValueError(
            f"goal atom predicate {goal_atom.predicate!r} is not an IDB "
            "predicate of the program"
        )
    missing = {
        term.name
        for term in goal_atom.args
        if isinstance(term, Constant)
    } - set(structure.constants)
    if missing:
        raise ValueError(
            f"goal atom mentions constants the structure does not "
            f"interpret: {sorted(missing)}"
        )
    rewrite = magic_rewrite(program, goal_atom) if magic else None
    target = program if rewrite is None else rewrite.program
    with _trace.tracer.span(
        "query",
        goal=str(goal_atom),
        engine=engine,
        magic=magic,
    ):
        if engine == "algebra":
            from repro.datalog.algebra_engine import evaluate_algebra

            if collect_analyze:
                raise ValueError(
                    "collect_analyze requires a plan-based engine "
                    f"({', '.join(ANALYZE_ENGINES)}), not 'algebra'"
                )
            result = evaluate_algebra(
                target,
                structure,
                extra_edb=extra_edb,
                collect_profile=collect_profile,
                budget=budget,
                cancellation=cancellation,
            )
        else:
            result = evaluate(
                target,
                structure,
                extra_edb=extra_edb,
                method=engine,
                collect_profile=collect_profile,
                collect_analyze=collect_analyze,
                budget=budget,
                cancellation=cancellation,
            )
    constants = dict(structure.constants)
    answers = frozenset(
        row
        for row in result.goal_relation
        if goal_matches(row, goal_atom, constants)
    )
    return QueryResult(
        answers=answers,
        goal_atom=goal_atom,
        magic=magic,
        result=result,
        rewrite=rewrite,
    )


def boolean_query(
    program: Program,
    structure: Structure,
    arguments: tuple = (),
    extra_edb: Mapping[str, Iterable[tuple]] | None = None,
) -> bool:
    """Evaluate the program and test ``arguments`` against the goal.

    For a nullary goal, pass the empty tuple; the query is then "was the
    goal fact derived at all".
    """
    result = evaluate(program, structure, extra_edb=extra_edb)
    return result.holds(arguments)
