"""Bottom-up fixpoint evaluation of Datalog(!=) programs.

Two engines are provided and cross-validated against each other in the
test suite:

* **naive** -- iterate the paper's operator ``Theta`` from the empty
  interpretation; the intermediate interpretations are exactly the stages
  ``Theta^1 <= Theta^2 <= ...`` of Section 2, which Theorem 3.6 translates
  into ``L^{l+r}`` formulas;
* **semi-naive** -- the standard delta-driven optimisation, used by
  default.

Variables range over the *universe* of the input structure (the paper
defines ``Theta_A(S) = {a : A, a |= phi(w, S)}`` with no range
restriction), so variables that occur only in the head or in constraints
are enumerated over the whole universe.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping

from repro.datalog.ast import (
    Atom,
    Constant,
    Equality,
    Inequality,
    Program,
    Rule,
    Term,
    Variable,
)
from repro.structures.structure import Structure

Element = Hashable
Database = dict[str, set]
Binding = dict[Variable, Element]


@dataclass(frozen=True)
class FixpointResult:
    """The least fixpoint of a program on a structure.

    Attributes
    ----------
    relations:
        Final interpretation of every IDB predicate.
    goal:
        Name of the goal predicate.
    stages:
        When requested, the sequence ``Theta^1, Theta^2, ...`` (one dict of
        IDB relations per stage, cumulative, last equals ``relations``).
    iterations:
        Number of operator applications performed until stabilisation.
    """

    relations: Mapping[str, frozenset]
    goal: str
    stages: tuple[Mapping[str, frozenset], ...] | None
    iterations: int

    @property
    def goal_relation(self) -> frozenset:
        """The relation computed for the goal predicate."""
        return self.relations[self.goal]

    def holds(self, arguments: tuple = ()) -> bool:
        """Whether the goal relation contains ``arguments``."""
        return tuple(arguments) in self.goal_relation


def _resolve(term: Term, binding: Binding, constants: Mapping[str, Element]):
    """The element a term denotes under ``binding``; None if unbound."""
    if isinstance(term, Constant):
        try:
            return constants[term.name]
        except KeyError:
            raise ValueError(
                f"program mentions constant ${term.name} but the structure "
                "does not interpret it"
            ) from None
    return binding.get(term)


def _match_atom(
    atom: Atom,
    tuples: Iterable[tuple],
    bindings: list[Binding],
    constants: Mapping[str, Element],
) -> list[Binding]:
    """Join the current bindings with an atom over the given tuples.

    A hash join: for each set of argument positions already determined
    by a binding, the relation is indexed once on those positions, so
    each binding only touches the rows that can possibly match.
    """
    result: list[Binding] = []
    tuple_list = list(tuples)
    indexes: dict[tuple, dict[tuple, list[tuple]]] = {}
    for binding in bindings:
        bound_positions: list[int] = []
        key: list[Element] = []
        for position, term in enumerate(atom.args):
            value = _resolve(term, binding, constants)
            if value is not None:
                bound_positions.append(position)
                key.append(value)
        positions = tuple(bound_positions)
        index = indexes.get(positions)
        if index is None:
            index = {}
            for row in tuple_list:
                index.setdefault(
                    tuple(row[i] for i in positions), []
                ).append(row)
            indexes[positions] = index
        for row in index.get(tuple(key), ()):
            extended = dict(binding)
            ok = True
            for term, value in zip(atom.args, row):
                known = _resolve(term, extended, constants)
                if known is None:
                    extended[term] = value  # term must be a Variable
                elif known != value:
                    ok = False
                    break
            if ok:
                result.append(extended)
    return result


def _apply_ready_constraints(
    rule: Rule,
    bindings: list[Binding],
    constants: Mapping[str, Element],
    pending: set[int],
) -> list[Binding]:
    """Filter bindings by constraints whose terms are all determined.

    Equalities with exactly one bound side *bind* the other side instead
    of filtering.  ``pending`` holds indices (into ``rule.body``) of
    constraints not yet applied and is updated in place.
    """
    changed = True
    while changed and pending:
        changed = False
        for index in sorted(pending):
            literal = rule.body[index]
            left, right = literal.left, literal.right
            survivors: list[Binding] = []
            # Decide whether this constraint is ready for every binding:
            # constraints are ready when, for each binding, both sides are
            # resolvable -- or, for an equality, one side is.
            ready = True
            for binding in bindings:
                lv = _resolve(left, binding, constants)
                rv = _resolve(right, binding, constants)
                if lv is None and rv is None:
                    ready = False
                    break
                if isinstance(literal, Inequality) and (lv is None or rv is None):
                    ready = False
                    break
            if not ready:
                continue
            for binding in bindings:
                lv = _resolve(left, binding, constants)
                rv = _resolve(right, binding, constants)
                if isinstance(literal, Equality):
                    if lv is None:
                        extended = dict(binding)
                        extended[left] = rv
                        survivors.append(extended)
                    elif rv is None:
                        extended = dict(binding)
                        extended[right] = lv
                        survivors.append(extended)
                    elif lv == rv:
                        survivors.append(binding)
                else:
                    if lv != rv:
                        survivors.append(binding)
            bindings = survivors
            pending.discard(index)
            changed = True
    return bindings


def _rule_bindings(
    rule: Rule,
    database: Mapping[str, Iterable[tuple]],
    universe: Iterable[Element],
    constants: Mapping[str, Element],
    delta_index: int | None = None,
    delta: Iterable[tuple] | None = None,
) -> Iterator[Binding]:
    """All satisfying bindings for a rule body.

    When ``delta_index`` is given, the ``delta_index``-th relational atom
    is joined against ``delta`` instead of the full relation (the
    semi-naive trick).
    """
    bindings: list[Binding] = [{}]
    pending = {
        index
        for index, literal in enumerate(rule.body)
        if not isinstance(literal, Atom)
    }
    atom_position = 0
    for literal in rule.body:
        if not isinstance(literal, Atom):
            continue
        if atom_position == delta_index and delta is not None:
            rows: Iterable[tuple] = delta
        else:
            rows = database.get(literal.predicate, ())
        bindings = _match_atom(literal, rows, bindings, constants)
        if not bindings:
            return
        bindings = _apply_ready_constraints(rule, bindings, constants, pending)
        if not bindings:
            return
        atom_position += 1

    # Enumerate variables still unbound (head-only / constraint-only vars).
    universe_list = list(universe)
    needed = sorted(rule.variables())
    for binding in bindings:
        free = [v for v in needed if v not in binding]
        if not free:
            candidates: Iterable[Binding] = (binding,)
        else:
            candidates = (
                {**binding, **dict(zip(free, values))}
                for values in itertools.product(universe_list, repeat=len(free))
            )
        for candidate in candidates:
            if _constraints_hold(rule, candidate, constants):
                yield candidate


def _constraints_hold(
    rule: Rule, binding: Binding, constants: Mapping[str, Element]
) -> bool:
    for literal in rule.constraints():
        lv = _resolve(literal.left, binding, constants)
        rv = _resolve(literal.right, binding, constants)
        if isinstance(literal, Equality):
            if lv != rv:
                return False
        else:
            if lv == rv:
                return False
    return True


def _head_tuple(
    rule: Rule, binding: Binding, constants: Mapping[str, Element]
) -> tuple:
    values = []
    for term in rule.head.args:
        value = _resolve(term, binding, constants)
        if value is None:  # pragma: no cover - ruled out by enumeration
            raise RuntimeError(f"unbound head term {term} in rule {rule}")
        values.append(value)
    return tuple(values)


def _database_from_structure(
    program: Program,
    structure: Structure,
    extra_edb: Mapping[str, Iterable[tuple]] | None,
) -> tuple[Database, dict[str, Element]]:
    extra = {
        name: {tuple(t) for t in tuples}
        for name, tuples in (extra_edb or {}).items()
    }
    database: Database = {}
    for predicate in program.edb_predicates:
        if predicate in extra:
            database[predicate] = set(extra[predicate])
        elif structure.vocabulary.has_relation(predicate):
            database[predicate] = set(structure.relation(predicate))
        else:
            raise ValueError(
                f"EDB predicate {predicate!r} is interpreted neither by the "
                "structure nor by extra_edb"
            )
    constants = dict(structure.constants)
    missing = program.constants() - set(constants)
    if missing:
        raise ValueError(
            f"program mentions constants the structure does not interpret: "
            f"{sorted(missing)}"
        )
    return database, constants


def _apply_all_rules(
    program: Program,
    database: Mapping[str, Iterable[tuple]],
    universe: Iterable[Element],
    constants: Mapping[str, Element],
) -> dict[str, set]:
    """One application of the paper's operator Theta to ``database``."""
    derived: dict[str, set] = {p: set() for p in program.idb_predicates}
    for rule in program.rules:
        for binding in _rule_bindings(rule, database, universe, constants):
            derived[rule.head.predicate].add(
                _head_tuple(rule, binding, constants)
            )
    return derived


def _snapshot(database: Database, idb: frozenset[str]) -> dict[str, frozenset]:
    return {p: frozenset(database.get(p, ())) for p in idb}


def evaluate(
    program: Program,
    structure: Structure,
    extra_edb: Mapping[str, Iterable[tuple]] | None = None,
    method: str = "seminaive",
    collect_stages: bool = False,
) -> FixpointResult:
    """Compute the least fixpoint ``pi^infty`` of a program on a structure.

    Parameters
    ----------
    program:
        The Datalog(!=) program.
    structure:
        Interprets every EDB predicate (unless overridden) and every
        constant the program mentions.
    extra_edb:
        Optional relation overrides/additions, e.g. feeding a previously
        computed predicate ``T`` into a follow-up program, as the proof of
        Theorem 6.1 does ("consider the following program in which T is
        viewed as an EDB predicate").
    method:
        ``"seminaive"`` (default) or ``"naive"``.
    collect_stages:
        When true, record the cumulative stage relations (forces naive
        evaluation, whose iterations are exactly the paper's stages).
    """
    if method not in ("naive", "seminaive"):
        raise ValueError(f"unknown evaluation method {method!r}")
    if collect_stages:
        method = "naive"
    database, constants = _database_from_structure(program, structure, extra_edb)
    universe = list(structure.universe)
    for predicate in program.idb_predicates:
        database.setdefault(predicate, set())

    stage_snapshots: list[dict[str, frozenset]] = []
    iterations = 0

    if method == "naive":
        while True:
            derived = _apply_all_rules(program, database, universe, constants)
            iterations += 1
            changed = False
            for predicate, tuples in derived.items():
                if not tuples <= database[predicate]:
                    changed = True
                database[predicate] = database[predicate] | tuples
            if collect_stages:
                stage_snapshots.append(
                    _snapshot(database, program.idb_predicates)
                )
            if not changed:
                break
    else:
        iterations = _seminaive(program, database, universe, constants)

    return FixpointResult(
        relations=_snapshot(database, program.idb_predicates),
        goal=program.goal,
        stages=tuple(stage_snapshots) if collect_stages else None,
        iterations=iterations,
    )


def _seminaive(
    program: Program,
    database: Database,
    universe: list,
    constants: Mapping[str, Element],
) -> int:
    """Delta-driven evaluation; mutates ``database``; returns iterations."""
    idb = program.idb_predicates
    # Initial round: every rule against the EDB-only database.
    delta: dict[str, set] = {p: set() for p in idb}
    derived = _apply_all_rules(program, database, universe, constants)
    for predicate, tuples in derived.items():
        fresh = tuples - database[predicate]
        database[predicate] |= fresh
        delta[predicate] = fresh
    iterations = 1

    while any(delta.values()):
        new_delta: dict[str, set] = {p: set() for p in idb}
        for rule in program.rules:
            atoms = rule.body_atoms()
            idb_positions = [
                index
                for index, atom in enumerate(atoms)
                if atom.predicate in idb
            ]
            if not idb_positions:
                continue  # EDB-only rules contribute nothing after round 1
            for position in idb_positions:
                predicate = atoms[position].predicate
                if not delta[predicate]:
                    continue
                for binding in _rule_bindings(
                    rule,
                    database,
                    universe,
                    constants,
                    delta_index=position,
                    delta=delta[predicate],
                ):
                    head = _head_tuple(rule, binding, constants)
                    if head not in database[rule.head.predicate]:
                        new_delta[rule.head.predicate].add(head)
        for predicate, tuples in new_delta.items():
            database[predicate] |= tuples
        delta = new_delta
        iterations += 1
    return iterations


def stages(
    program: Program,
    structure: Structure,
    extra_edb: Mapping[str, Iterable[tuple]] | None = None,
) -> tuple[Mapping[str, frozenset], ...]:
    """The paper's stage sequence ``Theta^1, Theta^2, ...`` (cumulative).

    The final entry is the least fixpoint; by the paper's Section 2
    discussion the sequence stabilises after at most ``|A|^r`` steps.
    """
    result = evaluate(
        program, structure, extra_edb=extra_edb, collect_stages=True
    )
    assert result.stages is not None
    return result.stages


def boolean_query(
    program: Program,
    structure: Structure,
    arguments: tuple = (),
    extra_edb: Mapping[str, Iterable[tuple]] | None = None,
) -> bool:
    """Evaluate the program and test ``arguments`` against the goal.

    For a nullary goal, pass the empty tuple; the query is then "was the
    goal fact derived at all".
    """
    result = evaluate(program, structure, extra_edb=extra_edb)
    return result.holds(arguments)
