"""Goal-directed evaluation: adornments and the magic-sets rewrite.

Every engine in :mod:`repro.datalog.evaluation` computes the *full*
least fixpoint, even when the caller only cares about one ground goal
fact -- the Theorem 6.1 ``Q_{k,l}`` programs and the w-avoiding-path
query of Example 2.1 both decide a property of a few distinguished
nodes, yet full evaluation derives every tuple over the whole universe.
This module implements the classical demand transformation:

* **adornment analysis** -- a goal atom's argument pattern (``b`` where
  the argument is a constant, ``f`` where it is a variable) is
  propagated through rule bodies along a sideways-information-passing
  (SIP) order.  The SIP order *is* the PR-1 planner's greedy atom
  order: :func:`repro.datalog.planner.plan_rule` is called with the
  adornment's bound head variables pre-bound, and each scheduled atom's
  ``bound_positions`` is its adornment at that point;
* **magic predicates** -- for every adorned IDB predicate ``p^a`` a
  predicate ``m__p__a`` over the bound positions collects the subqueries
  actually demanded;
* **the rewrite** ``Program x goal binding -> Program`` -- each adorned
  rule is guarded by its magic atom, and for every IDB body atom a magic
  rule derives the demanded binding from the guard plus the SIP prefix.

The output is plain Datalog(!=) -- magic seeds are fact rules over
structure constants, guards are ordinary atoms -- so all four engines
run it unchanged.  Correctness (same goal answers as direct evaluation,
restricted to the binding) is non-obvious and is pinned by the
property-based equivalence harness in
``tests/test_engine_random_programs.py`` and the metamorphic suite in
``tests/test_magic_metamorphic.py``.

Universe-ranging semantics: the paper's variables range over the whole
universe (head-only variables are enumerated), and the rewrite
preserves this -- a free head variable simply never appears in the
magic guard, and constraints travel with their SIP position, so a magic
rule's body may legitimately enumerate (the engines already do).

Only rules reachable from the goal adornment are visited, so programs
carrying junk rules over EDB predicates the structure does not
interpret still evaluate goal-directedly (direct evaluation would
refuse; see :func:`repro.datalog.transform.reachable_predicates`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.datalog.ast import (
    Atom,
    Constant,
    Program,
    Rule,
    Variable,
)
from repro.datalog.planner import AtomStep, ConstraintStep, plan_rule
from repro.obs import metrics as _metrics


def goal_adornment(goal_atom: Atom) -> str:
    """The b/f pattern of a goal atom: ``b`` per constant argument."""
    return "".join(
        "b" if isinstance(term, Constant) else "f" for term in goal_atom.args
    )


def goal_atom_from_adornment(
    program: Program, adornment: str, predicate: str | None = None
) -> Atom:
    """A schematic goal atom realising ``adornment`` (e.g. ``"bf"``).

    Bound positions get placeholder constants ``$g1, $g2, ...`` (the
    caller's structure must interpret them to *run* the rewrite;
    ``repro explain --magic`` only prints it), free positions get fresh
    variables.  ``predicate`` defaults to the program goal.
    """
    name = program.goal if predicate is None else predicate
    if name not in program.idb_predicates:
        raise ValueError(f"{name!r} is not an IDB predicate of the program")
    arity = program.arity(name)
    if len(adornment) != arity or set(adornment) - {"b", "f"}:
        raise ValueError(
            f"adornment {adornment!r} does not match {name}/{arity}; "
            "use one 'b' or 'f' per argument position"
        )
    args = []
    bound = 0
    for position, flag in enumerate(adornment):
        if flag == "b":
            bound += 1
            args.append(Constant(f"g{bound}"))
        else:
            args.append(Variable(f"f{position + 1}"))
    return Atom(name, args)


def _separator(program: Program) -> str:
    """A ``__``-style separator no existing predicate name collides with.

    Generated names are ``{pred}{sep}{adornment}`` and
    ``m{sep}{pred}{sep}{adornment}``; widening the separator until no
    original predicate contains it makes collisions impossible.
    """
    names = program.idb_predicates | program.edb_predicates
    separator = "__"
    while any(separator in name for name in names) or any(
        name.startswith("m" + separator) for name in names
    ):
        separator += "_"
    return separator


@dataclass(frozen=True)
class MagicRewrite:
    """The result of :func:`magic_rewrite`.

    Attributes
    ----------
    source:
        The original program.
    goal_atom:
        The binding the rewrite is specialised to.
    adornment:
        Its b/f pattern.
    program:
        The rewritten plain Datalog(!=) program; its goal is the adorned
        goal predicate (same arity as the original goal).
    adorned_rules:
        The guarded adorned rules, in generation order.
    magic_rules:
        The demand rules, seed first.
    seed:
        The magic seed fact for the goal binding.
    """

    source: Program
    goal_atom: Atom
    adornment: str
    program: Program
    adorned_rules: tuple[Rule, ...]
    magic_rules: tuple[Rule, ...]
    seed: Rule

    @property
    def adorned_goal(self) -> str:
        """Name of the rewritten program's goal predicate."""
        return self.program.goal


def magic_rewrite(program: Program, goal_atom: Atom) -> MagicRewrite:
    """Rewrite ``program`` for goal-directed evaluation of ``goal_atom``.

    ``goal_atom`` names an IDB predicate (normally the goal) with
    constants at bound positions and variables at free positions.  The
    rewritten program derives, for the adorned goal predicate, exactly
    the goal tuples of the original program that match the binding --
    touching only the facts the binding demands.
    """
    predicate = goal_atom.predicate
    if predicate not in program.idb_predicates:
        raise ValueError(
            f"goal atom predicate {predicate!r} is not an IDB predicate"
        )
    if goal_atom.arity != program.arity(predicate):
        raise ValueError(
            f"goal atom {goal_atom} has arity {goal_atom.arity}, but "
            f"{predicate} has arity {program.arity(predicate)}"
        )
    adornment = goal_adornment(goal_atom)
    separator = _separator(program)

    def adorned_name(name: str, pattern: str) -> str:
        return f"{name}{separator}{pattern}"

    def magic_name(name: str, pattern: str) -> str:
        return f"m{separator}{name}{separator}{pattern}"

    idb = program.idb_predicates
    adorned_rules: list[Rule] = []
    magic_rules: list[Rule] = []
    queue: deque[tuple[str, str]] = deque([(predicate, adornment)])
    visited: set[tuple[str, str]] = set()
    while queue:
        name, pattern = queue.popleft()
        if (name, pattern) in visited:
            continue
        visited.add((name, pattern))
        for rule in program.rules_for(name):
            head = rule.head
            bound_head_vars = frozenset(
                term
                for term, flag in zip(head.args, pattern)
                if flag == "b" and isinstance(term, Variable)
            )
            guard = Atom(
                magic_name(name, pattern),
                tuple(
                    term
                    for term, flag in zip(head.args, pattern)
                    if flag == "b"
                ),
            )
            plan = plan_rule(rule, bound_variables=bound_head_vars)
            body: list = [guard]
            for step in plan.steps:
                if isinstance(step, AtomStep):
                    atom = step.atom
                    if atom.predicate in idb:
                        bound = set(step.bound_positions)
                        sub_pattern = "".join(
                            "b" if position in bound else "f"
                            for position in range(atom.arity)
                        )
                        magic_rules.append(
                            Rule(
                                Atom(
                                    magic_name(atom.predicate, sub_pattern),
                                    tuple(
                                        atom.args[position]
                                        for position in step.bound_positions
                                    ),
                                ),
                                tuple(body),
                            )
                        )
                        queue.append((atom.predicate, sub_pattern))
                        body.append(
                            Atom(
                                adorned_name(atom.predicate, sub_pattern),
                                atom.args,
                            )
                        )
                    else:
                        body.append(atom)
                elif isinstance(step, ConstraintStep):
                    body.append(step.literal)
                # EnumerateStep: not a body literal -- the adorned rule
                # keeps the paper's universe-ranging semantics for free.
            adorned_rules.append(
                Rule(Atom(adorned_name(name, pattern), head.args), body)
            )

    seed = Rule(
        Atom(
            magic_name(predicate, adornment),
            tuple(term for term in goal_atom.args if isinstance(term, Constant)),
        )
    )
    rewritten = Program(
        [seed, *magic_rules, *adorned_rules],
        goal=adorned_name(predicate, adornment),
    )
    m = _metrics.metrics
    m.inc("magic.rewrites")
    m.inc("magic.adorned_rules", len(adorned_rules))
    m.inc("magic.magic_rules", len(magic_rules) + 1)
    return MagicRewrite(
        source=program,
        goal_atom=goal_atom,
        adornment=adornment,
        program=rewritten,
        adorned_rules=tuple(adorned_rules),
        magic_rules=(seed, *magic_rules),
        seed=seed,
    )


Element = Hashable


def goal_matches(
    row: tuple, goal_atom: Atom, constants: Mapping[str, Element]
) -> bool:
    """Whether a goal-relation tuple is consistent with the binding.

    Constant positions must equal the structure's interpretation;
    repeated variables must take equal values.
    """
    binding: dict[Variable, Element] = {}
    for term, value in zip(goal_atom.args, row):
        if isinstance(term, Constant):
            if constants[term.name] != value:
                return False
        else:
            known = binding.setdefault(term, value)
            if known != value:
                return False
    return True
