"""Incremental view maintenance: keeping a fixpoint live under updates.

Every engine in :mod:`repro.datalog.evaluation` recomputes the least
fixpoint from scratch.  An :class:`IncrementalSession` instead runs the
initial fixpoint *once* (via the indexed engine) and then maintains the
materialised IDB relations as the EDB changes, with work proportional
to the delta rather than to the database:

* **insertions** (:meth:`IncrementalSession.insert_facts`) resume the
  semi-naive delta iteration: the new EDB rows seed the delta, the
  already-compiled delta plans of :mod:`repro.datalog.planner` drive
  the continuation, and the hash indexes of
  :mod:`repro.datalog.indexing` are extended in place
  (:meth:`~repro.datalog.indexing.RelationIndex.add_rows`);
* **deletions** (:meth:`IncrementalSession.delete_facts`) run
  Delete/Rederive (DRed).  Phase 1 *over-deletes*: iterating the same
  delta plans against the pre-deletion database finds every tuple with
  some derivation through a deleted tuple, discarding the matching
  supports from the :class:`~repro.datalog.provenance.SupportTable`.
  Phase 2 *rederives*: tuples whose derivation count stayed positive
  have an immediate alternative derivation from the surviving database
  -- they re-enter as an insertion delta and the continuation restores
  everything reachable from them.

Correctness rests on two classical facts.  Over-deletion
over-approximates the set of tuples that leave the fixpoint, so the
surviving database is contained in the new fixpoint; and because the
support table is exact (see :mod:`repro.datalog.provenance`), the
rederive seed is precisely the set of over-deleted tuples that are
one-step derivable from the survivors, so the subsequent insertion
propagation converges to the new fixpoint.  The differential corpus in
``tests/test_incremental_differential.py`` pins the end-to-end
property: after every update the session equals a from-scratch
``evaluate()`` on the mutated database, for every engine.

The universe of the session's structure is fixed: updates may only
mention existing elements (the paper's semantics ranges variables over
the universe, so admitting new elements would silently change every
universe-enumerated relation).

Observability: updates open ``incremental.insert`` /
``incremental.delete`` spans, propagation rounds feed the usual
``datalog.*`` round counters plus ``incremental.delta_tuples_touched``,
and each :class:`MaintenanceResult` can carry a per-round
:class:`~repro.datalog.evaluation.EvaluationProfile` mirroring
``FixpointResult.profile``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.guard import (
    CancellationToken,
    EvaluationGuard,
    GuardTrip,
    MaintenanceAborted,
    ResourceBudget,
)
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.testing import faults as _faults

from repro.datalog.ast import Constant, Program
from repro.datalog.evaluation import (
    EvaluationProfile,
    FixpointResult,
    _compile_plan,
    _database_from_structure,
    _profile_builder,
    _record_round,
    _run_plan,
    evaluate,
)
from repro.datalog.indexing import IndexedDatabase
from repro.datalog.planner import plan_rule
from repro.datalog.provenance import SupportTable, support_key
from repro.structures.structure import Structure

Row = tuple

#: Source descriptors ``(from_slot, slot_or_value)`` per argument
#: position, mirroring ``_CompiledPlan.head``.
_Sources = tuple[tuple[bool, object], ...]


def _ground(sources: _Sources, binding: list) -> Row:
    """The ground row a slot binding assigns to one atom's arguments."""
    return tuple(
        binding[value] if from_slot else value for from_slot, value in sources
    )


@dataclass(frozen=True)
class _PlanExec:
    """One compiled plan plus the extractors provenance needs.

    ``body_sources[i]`` grounds the ``i``-th relational body atom (in
    body order, the canonical support order) from a slot binding.
    """

    compiled: object  # _CompiledPlan
    head_predicate: str
    head_sources: _Sources
    body_sources: tuple[_Sources, ...]


def _plan_exec(rule, compiled, constants) -> _PlanExec:
    slots = dict(compiled.slots)

    def sources(atom) -> _Sources:
        out = []
        for term in atom.args:
            if isinstance(term, Constant):
                out.append((False, constants[term.name]))
            else:
                out.append((True, slots[term]))
        return tuple(out)

    return _PlanExec(
        compiled=compiled,
        head_predicate=rule.head.predicate,
        head_sources=compiled.head,
        body_sources=tuple(sources(atom) for atom in rule.body_atoms()),
    )


@dataclass(frozen=True)
class Update:
    """One scripted EDB update (see :func:`parse_update_script`)."""

    kind: str  # "insert" | "delete"
    predicate: str
    row: Row

    def __str__(self) -> str:
        inner = ", ".join(str(x) for x in self.row)
        return f"{self.kind} {self.predicate}({inner})"


def parse_update_script(text: str) -> tuple[Update, ...]:
    """Parse an update script: one update per line.

    Lines are ``insert PRED node...`` / ``delete PRED node...`` (``+`` /
    ``-`` are accepted as aliases); blank lines and ``%`` / ``#``
    comments are skipped.  Raises ``ValueError`` with the line number on
    malformed lines.
    """
    kinds = {"insert": "insert", "+": "insert", "delete": "delete", "-": "delete"}
    updates: list[Update] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("%")[0].split("#")[0].strip()
        if not line:
            continue
        parts = line.split()
        kind = kinds.get(parts[0].lower())
        if kind is None or len(parts) < 2:
            raise ValueError(
                f"line {lineno}: expected 'insert|delete PREDICATE "
                f"[node ...]', got {raw.strip()!r}"
            )
        updates.append(Update(kind, parts[1], tuple(parts[2:])))
    return tuple(updates)


@dataclass(frozen=True)
class MaintenanceResult:
    """The outcome of one :class:`IncrementalSession` update.

    Mirrors :class:`~repro.datalog.evaluation.FixpointResult` where the
    notions coincide: ``profile`` (when requested) is the same
    per-round :class:`EvaluationProfile` the engines produce, so the
    differential harness can compare semantic views, and the per-
    predicate row sets let tests audit exactly what moved.

    Attributes
    ----------
    kind:
        ``"insert"`` or ``"delete"``.
    predicate / requested / applied:
        The updated EDB predicate, the rows asked for, and the subset
        that actually changed the EDB (already-present inserts and
        already-absent deletes are no-ops).
    idb_added / idb_removed:
        Net IDB change: tuples that entered / left the materialised
        view (per predicate, only non-empty entries).
    overdeleted / rederived:
        Deletion bookkeeping: what DRed phase 1 provisionally removed
        and what phase 2 restored (``rederived <= overdeleted``;
        ``idb_removed == overdeleted - rederived``).  Empty for inserts.
    rounds:
        Delta rounds run (over-deletion plus rederivation for deletes).
    delta_tuples_touched:
        Total delta tuples fed through the compiled plans -- the
        "work proportional to the delta" observable, also exported as
        the ``incremental.delta_tuples_touched`` counter.
    wall_seconds:
        Wall-clock time of the whole update.
    profile:
        Per-round profile when requested (``collect_profile=True``).
    """

    kind: str
    predicate: str
    requested: frozenset
    applied: frozenset
    idb_added: Mapping[str, frozenset]
    idb_removed: Mapping[str, frozenset]
    overdeleted: Mapping[str, frozenset]
    rederived: Mapping[str, frozenset]
    rounds: int
    delta_tuples_touched: int
    wall_seconds: float
    profile: EvaluationProfile | None = None

    @property
    def net_change(self) -> int:
        """Signed IDB tuple count: additions minus removals."""
        return sum(len(rows) for rows in self.idb_added.values()) - sum(
            len(rows) for rows in self.idb_removed.values()
        )

    def semantic_view(self) -> tuple | None:
        """The engine-independent per-round view (None without profile)."""
        return None if self.profile is None else self.profile.semantic_view()

    def to_dict(self) -> dict:
        """JSON-serialisable summary (CLI / benchmark rows)."""
        return {
            "kind": self.kind,
            "predicate": self.predicate,
            "applied": len(self.applied),
            "idb_added": {p: len(r) for p, r in self.idb_added.items()},
            "idb_removed": {p: len(r) for p, r in self.idb_removed.items()},
            "overdeleted": sum(len(r) for r in self.overdeleted.values()),
            "rederived": sum(len(r) for r in self.rederived.values()),
            "rounds": self.rounds,
            "delta_tuples_touched": self.delta_tuples_touched,
            "wall_ms": round(self.wall_seconds * 1000, 3),
        }


class IncrementalSession:
    """A live materialised view of one program on one structure.

    Parameters
    ----------
    program:
        The Datalog(!=) program whose fixpoint is kept materialised.
    structure:
        Interprets the EDB (unless overridden) and every constant; its
        universe is the fixed domain of the session.
    extra_edb:
        Optional EDB overrides, exactly as in :func:`evaluate`.
    budget / cancellation:
        Optional resource governance for the *update stream*: one
        :class:`~repro.guard.EvaluationGuard` is shared across every
        ``insert_facts`` / ``delete_facts`` call (counters accumulate,
        the wall-clock deadline runs from construction), so a scripted
        replay as a whole is bounded.  A tripped update raises
        :class:`~repro.guard.MaintenanceAborted` after **rolling the
        session back** to the state before that update -- the view,
        indexes, and provenance are as if the update was never
        attempted, so a ``--verify`` re-evaluation still matches.
    transactional:
        Force the per-update snapshot/rollback on (``True``) or off
        (``False``).  The default (``None``) enables it exactly when
        the session is governed (budget/cancellation given) or a fault
        plan is armed -- ungoverned sessions keep the zero-copy fast
        path, governed ones trade an O(database) snapshot per update
        for crash consistency.

    Construction runs the initial fixpoint once with the indexed engine
    and one support-enumeration pass (the provenance baseline); both
    are one-time costs amortised over the update stream.
    """

    def __init__(
        self,
        program: Program,
        structure: Structure,
        extra_edb: Mapping[str, Iterable[Row]] | None = None,
        budget: ResourceBudget | None = None,
        cancellation: CancellationToken | None = None,
        transactional: bool | None = None,
    ) -> None:
        self._program = program
        self._structure = structure
        self._guard: EvaluationGuard | None = None
        if budget is not None or cancellation is not None:
            self._guard = EvaluationGuard(budget, cancellation).start()
        self._transactional = transactional
        database, self._constants = _database_from_structure(
            program, structure, extra_edb
        )
        self._universe = list(structure.universe)
        self._universe_set = structure.universe

        self._initial = evaluate(
            program, structure, extra_edb=extra_edb, method="indexed"
        )
        for predicate in program.idb_predicates:
            database[predicate] = set(self._initial.relations[predicate])
        self._store = IndexedDatabase(database)

        # Compile once: a full plan per rule (the provenance baseline
        # pass) and one delta plan per body-atom occurrence -- unlike
        # the from-scratch engines, EDB occurrences get delta plans too,
        # because here the EDB itself is what changes.
        self._full: list[_PlanExec] = []
        self._delta: list[tuple[tuple[str, _PlanExec], ...]] = []
        for rule in program.rules:
            compiled = _compile_plan(plan_rule(rule), self._constants)
            self._full.append(_plan_exec(rule, compiled, self._constants))
            per_rule = []
            for atom_index, atom in enumerate(rule.body_atoms()):
                delta_plan = _compile_plan(
                    plan_rule(rule, delta_atom_index=atom_index),
                    self._constants,
                )
                per_rule.append(
                    (atom.predicate, _plan_exec(rule, delta_plan, self._constants))
                )
            self._delta.append(tuple(per_rule))

        self._supports = SupportTable()
        self._seed_supports()
        self._update_count = 0
        self._writer_lock = threading.Lock()

    # -- accessors --------------------------------------------------------

    @property
    def program(self) -> Program:
        return self._program

    @property
    def structure(self) -> Structure:
        """The structure the session was built on (original EDB)."""
        return self._structure

    @property
    def initial_result(self) -> FixpointResult:
        """The from-scratch fixpoint computed at construction."""
        return self._initial

    @property
    def update_count(self) -> int:
        """Updates applied so far."""
        return self._update_count

    @property
    def relations(self) -> dict[str, frozenset]:
        """The current IDB interpretation (the maintained view)."""
        return {
            predicate: frozenset(self._store.rows(predicate))
            for predicate in self._program.idb_predicates
        }

    @property
    def goal_relation(self) -> frozenset:
        return frozenset(self._store.rows(self._program.goal))

    def holds(self, arguments: tuple = ()) -> bool:
        """Whether the goal relation currently contains ``arguments``."""
        return tuple(arguments) in self._store.rows(self._program.goal)

    def derivation_count(self, predicate: str, row: Row) -> int:
        """Immediate derivations of an IDB tuple (provenance view)."""
        return self._supports.count(predicate, tuple(row))

    def current_extra_edb(self) -> dict[str, frozenset]:
        """The current EDB, in :func:`evaluate`'s ``extra_edb`` shape."""
        return {
            predicate: frozenset(self._store.rows(predicate))
            for predicate in self._program.edb_predicates
        }

    def reevaluate(self, method: str = "indexed", **kwargs) -> FixpointResult:
        """From-scratch evaluation on the session's *current* EDB.

        The differential harness (and ``repro maintain --verify``)
        compares this against :attr:`relations` after every update.
        """
        return evaluate(
            self._program,
            self._structure,
            extra_edb=self.current_extra_edb(),
            method=method,
            **kwargs,
        )

    # -- construction helpers ---------------------------------------------

    def _seed_supports(self) -> None:
        """The provenance baseline: every derivation within the fixpoint."""
        for rule_index, execu in enumerate(self._full):
            for binding in _run_plan(
                execu.compiled, self._store, self._universe
            ):
                self._supports.add(
                    execu.head_predicate,
                    _ground(execu.head_sources, binding),
                    support_key(
                        rule_index,
                        (_ground(s, binding) for s in execu.body_sources),
                    ),
                )

    def _check_edb_rows(self, predicate: str, rows: Iterable) -> set[Row]:
        if predicate not in self._program.edb_predicates:
            raise ValueError(
                f"{predicate!r} is not an EDB predicate of the program; "
                "only extensional facts can be inserted or deleted"
            )
        arity = self._program.arity(predicate)
        checked: set[Row] = set()
        for row in rows:
            t = tuple(row)
            if len(t) != arity:
                raise ValueError(
                    f"row {t} has arity {len(t)}, but {predicate!r} has "
                    f"arity {arity}"
                )
            bad = [x for x in t if x not in self._universe_set]
            if bad:
                raise ValueError(
                    f"row {t} mentions elements outside the (fixed) "
                    f"universe: {bad}"
                )
            checked.add(t)
        return checked

    # -- the single-writer contract ----------------------------------------

    @contextmanager
    def _exclusive_writer(self, kind: str, predicate: str):
        """Enforce one update at a time (the contract servers rely on).

        The session's store, indexes, and provenance are mutated
        mid-update with no internal synchronisation, so a second
        ``apply`` racing the first -- from another thread, or
        reentrantly from a callback inside the same thread -- would
        corrupt the support table silently.  A non-blocking lock makes
        the misuse loud instead: the overlapping call raises
        ``RuntimeError`` immediately and the in-flight update is
        untouched.  ``repro serve`` routes every update through one
        writer task and leans on this check as its backstop.
        """
        if not self._writer_lock.acquire(blocking=False):
            raise RuntimeError(
                f"IncrementalSession is single-writer: {kind} "
                f"{predicate!r} was requested while another update is "
                "still being applied (concurrent or reentrant apply); "
                "serialise updates through one writer"
            )
        try:
            yield
        finally:
            self._writer_lock.release()

    # -- transactions ------------------------------------------------------

    def _snapshot_state(self) -> tuple | None:
        """Copy (store rows, supports) when this update must be atomic.

        Provenance supports are recorded per *binding* mid-round (that
        is what keeps them exact), so round-boundary discipline alone
        cannot make an aborted update invisible -- only restoring a
        pre-update copy can.
        """
        wanted = self._transactional
        if wanted is None:
            wanted = (
                self._guard is not None
                or _faults.faults is not _faults.NOOP
            )
        if not wanted:
            return None
        rows = {name: set(self._store.rows(name)) for name in self._store}
        return rows, self._supports.clone()

    def _rollback(self, snapshot: tuple) -> None:
        """Restore the pre-update state (fresh store, cloned supports)."""
        rows, supports = snapshot
        self._store = IndexedDatabase(rows)
        self._supports = supports
        _metrics.metrics.inc("incremental.rollbacks")

    # -- the delta engine --------------------------------------------------

    def _propagate(
        self, delta: dict[str, set], profile
    ) -> tuple[dict[str, set], int, int]:
        """Semi-naive continuation from an already-merged ``delta``.

        ``delta`` rows must already be present in the store (EDB rows
        just inserted, or rederived IDB tuples just restored), matching
        the indexed engine's merge-then-join discipline.  Returns the
        per-predicate IDB rows newly added, the number of rounds, and
        the number of delta tuples fed through the plans.  New supports
        are recorded for every enumerated derivation -- including those
        of already-present heads, which is what keeps the provenance
        exact for later deletions.
        """
        tracer = _trace.tracer
        guard = self._guard
        idb = self._program.idb_predicates
        added: dict[str, set] = {p: set() for p in idb}
        rounds = 0
        touched = 0
        while any(delta.values()):
            if guard is not None:
                guard.check_boundary()
            rounds += 1
            touched += sum(len(rows) for rows in delta.values())
            if profile is not None:
                profile.start_round()
            new_delta: dict[str, set] = {p: set() for p in idb}
            rule_firings: list[int] = []
            bindings_enumerated = 0
            with tracer.span(
                "iteration", engine="incremental", round=rounds
            ):
                for rule_index, plans in enumerate(self._delta):
                    _faults.faults.hit("rule")
                    fired: set = set()
                    head_predicate = None
                    for predicate, execu in plans:
                        rows = delta.get(predicate)
                        if not rows:
                            continue
                        head_predicate = execu.head_predicate
                        existing = self._store.rows(head_predicate)
                        for binding in _run_plan(
                            execu.compiled,
                            self._store,
                            self._universe,
                            delta_rows=rows,
                            guard=guard,
                        ):
                            bindings_enumerated += 1
                            head = _ground(execu.head_sources, binding)
                            self._supports.add(
                                head_predicate,
                                head,
                                support_key(
                                    rule_index,
                                    (
                                        _ground(s, binding)
                                        for s in execu.body_sources
                                    ),
                                ),
                            )
                            if head not in existing:
                                fired.add(head)
                    rule_firings.append(len(fired))
                    if head_predicate is not None:
                        new_delta[head_predicate] |= fired
            merged: dict[str, set] = {}
            for predicate, rows in new_delta.items():
                fresh = self._store.relation(predicate).add_rows(rows)
                added[predicate] |= fresh
                merged[predicate] = fresh
            _record_round(
                "incremental",
                {p: len(rows) for p, rows in merged.items()},
                rule_firings,
                bindings_enumerated,
                bindings_enumerated,
                profile,
                guard,
            )
            delta = merged
        return added, rounds, touched

    # -- updates -----------------------------------------------------------

    def insert_facts(
        self,
        predicate: str,
        rows: Iterable,
        collect_profile: bool = False,
    ) -> MaintenanceResult:
        """Add EDB rows and restore the fixpoint by delta continuation.

        Work is driven entirely by the new rows: they seed the delta,
        every round joins only the delta against the incrementally
        maintained indexes, and iteration stops when the delta empties.

        Atomic when the session is transactional (see the class
        docstring): a budget trip mid-propagation rolls the whole
        insert back and raises
        :class:`~repro.guard.MaintenanceAborted`; any other exception
        escaping the update (e.g. an injected crash) also restores the
        pre-update state before propagating.

        Updates are **single-writer**: an overlapping call (from
        another thread, or reentrantly) raises ``RuntimeError`` and
        leaves the in-flight update untouched.
        """
        with self._exclusive_writer("insert", predicate):
            return self._insert_facts(predicate, rows, collect_profile)

    def _insert_facts(
        self,
        predicate: str,
        rows: Iterable,
        collect_profile: bool = False,
    ) -> MaintenanceResult:
        requested = self._check_edb_rows(predicate, rows)
        start = time.perf_counter()
        m = _metrics.metrics
        m.inc("incremental.inserts")
        profile = _profile_builder(self._program) if collect_profile else None
        snapshot = self._snapshot_state()
        update = f"insert {predicate} ({len(requested)} rows)"
        try:
            with _trace.tracer.span(
                "incremental.insert", predicate=predicate, rows=len(requested)
            ) as span:
                if self._guard is not None:
                    self._guard.check_boundary()
                fresh = self._store.relation(predicate).add_rows(requested)
                added, rounds, touched = self._propagate(
                    {predicate: set(fresh)}, profile
                )
                m.inc("incremental.delta_tuples_touched", touched)
                span.annotate(
                    applied=len(fresh),
                    rounds=rounds,
                    new_tuples=sum(len(r) for r in added.values()),
                )
        except GuardTrip as trip:
            self._rollback(snapshot)
            raise MaintenanceAborted(
                update, trip.reason, trip.limit, trip.spent
            ) from None
        except BaseException:
            if snapshot is not None:
                self._rollback(snapshot)
            raise
        self._update_count += 1
        return MaintenanceResult(
            kind="insert",
            predicate=predicate,
            requested=frozenset(requested),
            applied=frozenset(fresh),
            idb_added={
                p: frozenset(r) for p, r in added.items() if r
            },
            idb_removed={},
            overdeleted={},
            rederived={},
            rounds=rounds,
            delta_tuples_touched=touched,
            wall_seconds=time.perf_counter() - start,
            profile=None if profile is None else profile.build("incremental-insert"),
        )

    def delete_facts(
        self,
        predicate: str,
        rows: Iterable,
        collect_profile: bool = False,
    ) -> MaintenanceResult:
        """Remove EDB rows and restore the fixpoint by Delete/Rederive.

        Phase 1 (over-delete) runs the delta plans against the
        *pre-deletion* database: every derivation that mentions a
        deleted tuple is enumerated, its support discarded, and its
        head provisionally marked.  Phase 2 (rederive) restores the
        marked tuples whose derivation count stayed positive -- by the
        provenance invariant, exactly the ones still one-step derivable
        from the survivors -- and lets the insertion continuation
        propagate from them.

        Single-writer exactly as :meth:`insert_facts`: an overlapping
        call raises ``RuntimeError``.
        """
        with self._exclusive_writer("delete", predicate):
            return self._delete_facts(predicate, rows, collect_profile)

    def _delete_facts(
        self,
        predicate: str,
        rows: Iterable,
        collect_profile: bool = False,
    ) -> MaintenanceResult:
        requested = self._check_edb_rows(predicate, rows)
        start = time.perf_counter()
        m = _metrics.metrics
        m.inc("incremental.deletes")
        tracer = _trace.tracer
        guard = self._guard
        idb = self._program.idb_predicates
        profile = _profile_builder(self._program) if collect_profile else None
        snapshot = self._snapshot_state()
        update = f"delete {predicate} ({len(requested)} rows)"
        try:
            with tracer.span(
                  "incremental.delete", predicate=predicate, rows=len(requested)
            ) as span:
                if guard is not None:
                    guard.check_boundary()
                present = requested & self._store.rows(predicate)

                # Phase 1: over-delete.  Joins run on the old database (the
                # deleted rows and marked tuples are removed only after the
                # loop), so every derivation through a deleted tuple is
                # enumerated and its support discarded exactly once per
                # mention -- idempotently.
                overdeleted: dict[str, set] = {p: set() for p in idb}
                delta: dict[str, set] = {predicate: set(present)}
                rounds = 0
                touched = 0
                while any(delta.values()):
                    if guard is not None:
                        guard.check_boundary()
                    rounds += 1
                    touched += sum(len(r) for r in delta.values())
                    if profile is not None:
                        profile.start_round()
                    new_delta: dict[str, set] = {p: set() for p in idb}
                    rule_firings: list[int] = []
                    bindings_enumerated = 0
                    with tracer.span(
                        "iteration", engine="incremental-overdelete", round=rounds
                    ):
                        for rule_index, plans in enumerate(self._delta):
                            _faults.faults.hit("rule")
                            fired: set = set()
                            head_predicate = None
                            for dpred, execu in plans:
                                drows = delta.get(dpred)
                                if not drows:
                                    continue
                                head_predicate = execu.head_predicate
                                marked = overdeleted[head_predicate]
                                for binding in _run_plan(
                                    execu.compiled,
                                    self._store,
                                    self._universe,
                                    delta_rows=drows,
                                    guard=guard,
                                ):
                                    bindings_enumerated += 1
                                    head = _ground(execu.head_sources, binding)
                                    self._supports.discard(
                                        head_predicate,
                                        head,
                                        support_key(
                                            rule_index,
                                            (
                                                _ground(s, binding)
                                                for s in execu.body_sources
                                            ),
                                        ),
                                    )
                                    if head not in marked:
                                        fired.add(head)
                            rule_firings.append(len(fired))
                            if head_predicate is not None:
                                new_delta[head_predicate] |= fired
                    for p, r in new_delta.items():
                        overdeleted[p] |= r
                    _record_round(
                        "incremental",
                        {p: len(r) for p, r in new_delta.items()},
                        rule_firings,
                        bindings_enumerated,
                        bindings_enumerated,
                        profile,
                        guard,
                    )
                    delta = new_delta

                # Physically retract: the deleted EDB rows plus everything
                # over-deleted, shrinking the indexes in place.
                self._store.relation(predicate).remove_rows(present)
                for p, r in overdeleted.items():
                    if r:
                        self._store.relation(p).remove_rows(r)

                # Phase 2: rederive.  Supports mentioning any removed tuple
                # are gone, so a positive count is an alternative derivation
                # from the survivors.
                seed = {
                    p: {
                        row
                        for row in r
                        if self._supports.supported(p, row)
                    }
                    for p, r in overdeleted.items()
                }
                for p, r in seed.items():
                    if r:
                        self._store.relation(p).add_rows(r)
                added, re_rounds, re_touched = self._propagate(
                    {p: set(r) for p, r in seed.items()}, profile
                )
                rederived = {
                    p: seed[p] | added.get(p, set()) for p in idb
                }
                removed = {
                    p: overdeleted[p] - rederived[p] for p in idb
                }
                for p, r in removed.items():
                    for row in r:
                        self._supports.drop_row(p, row)
                rounds += re_rounds
                touched += re_touched
                m.inc("incremental.delta_tuples_touched", touched)
                span.annotate(
                    applied=len(present),
                    rounds=rounds,
                    overdeleted=sum(len(r) for r in overdeleted.values()),
                    rederived=sum(len(r) for r in rederived.values()),
                )
        except GuardTrip as trip:
            self._rollback(snapshot)
            raise MaintenanceAborted(
                update, trip.reason, trip.limit, trip.spent
            ) from None
        except BaseException:
            if snapshot is not None:
                self._rollback(snapshot)
            raise
        self._update_count += 1
        return MaintenanceResult(
            kind="delete",
            predicate=predicate,
            requested=frozenset(requested),
            applied=frozenset(present),
            idb_added={},
            idb_removed={
                p: frozenset(r) for p, r in removed.items() if r
            },
            overdeleted={
                p: frozenset(r) for p, r in overdeleted.items() if r
            },
            rederived={
                p: frozenset(r) for p, r in rederived.items() if r
            },
            rounds=rounds,
            delta_tuples_touched=touched,
            wall_seconds=time.perf_counter() - start,
            profile=None if profile is None else profile.build("incremental-delete"),
        )

    def apply(
        self, update: Update, collect_profile: bool = False
    ) -> MaintenanceResult:
        """Apply one scripted :class:`Update`."""
        method = (
            self.insert_facts if update.kind == "insert" else self.delete_facts
        )
        return method(
            update.predicate, [update.row], collect_profile=collect_profile
        )

    def apply_script(
        self,
        updates: Iterable[Update],
        collect_profile: bool = False,
    ) -> list[MaintenanceResult]:
        """Replay a sequence of updates; returns one result per update."""
        return [
            self.apply(update, collect_profile=collect_profile)
            for update in updates
        ]
