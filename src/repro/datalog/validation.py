"""Static analysis of Datalog(!=) programs.

The analyses here back several claims of the paper:

* pure Datalog vs. Datalog(!=) -- inequality use is what breaks *strong*
  monotonicity (Section 2's remarks after Example 2.2);
* the number of distinct variables per rule -- Theorem 3.6 bounds the
  L^k translation width by ``l + r`` where ``l`` is the number of
  distinct variables of the rule-defining formula and ``r`` the IDB
  arity;
* the predicate dependency structure (recursion detection) -- used by the
  documentation and by sanity checks of the generated programs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalog.ast import Atom, Program, Rule, Variable


@dataclass(frozen=True)
class ProgramAnalysis:
    """A static summary of a program.

    Attributes
    ----------
    is_pure_datalog:
        No equalities or inequalities anywhere (plain Datalog).
    recursive_predicates:
        IDB predicates that depend on themselves (directly or not).
    max_rule_variables:
        Max number of distinct variables in any single rule; feeds the
        ``l`` of Theorem 3.6.
    max_idb_arity:
        Max arity of an IDB predicate; the ``r`` of Theorem 3.6.
    universe_enumerated:
        Per-rule tuples of variables not bound by any body atom; these
        range over the whole universe (legal, but worth surfacing).
    dependency_edges:
        Pairs ``(head_predicate, body_predicate)`` over IDB predicates.
    """

    is_pure_datalog: bool
    recursive_predicates: frozenset[str]
    max_rule_variables: int
    max_idb_arity: int
    universe_enumerated: tuple[tuple[Rule, frozenset[Variable]], ...]
    dependency_edges: frozenset[tuple[str, str]]

    @property
    def is_recursive(self) -> bool:
        """Whether any predicate is recursive."""
        return bool(self.recursive_predicates)

    @property
    def translation_width(self) -> int:
        """The ``l + r`` bound of Theorem 3.6 for this program.

        ``l`` is the number of distinct variables needed by the formula
        phi defining the program's operator (at most the max over rules of
        distinct rule variables), ``r`` the maximum IDB arity; the paper
        shows every stage is definable in ``L^{l+r}``.
        """
        return self.max_rule_variables + self.max_idb_arity


def _atom_bound_variables(rule: Rule) -> frozenset[Variable]:
    """Variables bound by relational atoms, closed under equalities."""
    bound: set[Variable] = set()
    for atom in rule.body_atoms():
        bound |= atom.variables()
    changed = True
    while changed:
        changed = False
        for constraint in rule.constraints():
            if constraint.__class__.__name__ != "Equality":
                continue
            left, right = constraint.left, constraint.right
            left_known = not isinstance(left, Variable) or left in bound
            right_known = not isinstance(right, Variable) or right in bound
            if left_known and not right_known:
                bound.add(right)  # type: ignore[arg-type]
                changed = True
            elif right_known and not left_known:
                bound.add(left)  # type: ignore[arg-type]
                changed = True
    return frozenset(bound)


def _recursive_predicates(program: Program) -> frozenset[str]:
    """Predicates lying on a cycle of the dependency graph."""
    edges: dict[str, set[str]] = {p: set() for p in program.idb_predicates}
    for rule in program.rules:
        for atom in rule.body_atoms():
            if atom.predicate in program.idb_predicates:
                edges[rule.head.predicate].add(atom.predicate)

    def reaches(start: str, goal: str) -> bool:
        seen: set[str] = set()
        stack = [start]
        while stack:
            node = stack.pop()
            for nxt in edges[node]:
                if nxt == goal:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    return frozenset(
        p for p in program.idb_predicates if reaches(p, p)
    )


def analyze_program(program: Program) -> ProgramAnalysis:
    """Compute the :class:`ProgramAnalysis` of a program."""
    enumerated: list[tuple[Rule, frozenset[Variable]]] = []
    max_vars = 0
    for rule in program.rules:
        rule_vars = rule.variables()
        max_vars = max(max_vars, len(rule_vars))
        unbound = rule_vars - _atom_bound_variables(rule)
        if unbound:
            enumerated.append((rule, frozenset(unbound)))

    dependency_edges = frozenset(
        (rule.head.predicate, atom.predicate)
        for rule in program.rules
        for atom in rule.body_atoms()
        if atom.predicate in program.idb_predicates
    )
    max_idb_arity = max(
        program.arity(p) for p in program.idb_predicates
    )
    return ProgramAnalysis(
        is_pure_datalog=program.is_pure_datalog(),
        recursive_predicates=_recursive_predicates(program),
        max_rule_variables=max_vars,
        max_idb_arity=max_idb_arity,
        universe_enumerated=tuple(enumerated),
        dependency_edges=dependency_edges,
    )
