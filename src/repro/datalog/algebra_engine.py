"""An algebra-backed Datalog(!=) engine.

A third evaluation strategy (after the naive and semi-naive binding
engines of :mod:`repro.datalog.evaluation`): compile every rule body
into a relational-algebra expression once, then iterate the operator by
evaluating the expressions against the growing IDB overlay -- the way a
relational database would execute the program.

Rule compilation:

* each body atom becomes a :class:`Base` over its predicate, columns
  named by the atom's variables (repeated variables collapse inside the
  Base, constants become placeholder columns selected against the
  structure constant);
* the body atoms are folded with natural :class:`Join`;
* rule variables bound by no atom are padded in with :class:`Universe`
  columns (the paper's universe-ranging semantics);
* equalities and inequalities become a :class:`Select`.

Cross-validated against the binding engines by the test suite on the
library programs and on hypothesis-generated random programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping

from repro.datalog.ast import (
    Atom,
    Constant,
    Equality,
    Inequality,
    Program,
    Rule,
    Variable,
)
from repro.datalog.evaluation import (
    FixpointResult,
    PartialFixpointResult,
    _budget_error,
    _database_from_structure,
    _profile_builder,
    _record_round,
)
from repro.datalog.indexing import IndexedDatabase
from repro.guard import (
    CancellationToken,
    EvaluationGuard,
    GuardTrip,
    ResourceBudget,
)
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.testing import faults as _faults
from repro.relalg.expressions import (
    Base,
    Condition,
    Expression,
    Join,
    Select,
    Truth,
    Universe,
    evaluate_expression,
    expression_columns,
)
from repro.structures.structure import Structure

Element = Hashable


@dataclass(frozen=True)
class CompiledRule:
    """A rule body as an algebra expression plus head assembly data.

    ``head_terms`` holds, per head position, either a column name (for
    variables) or a ``Constant`` to resolve against the structure.
    """

    rule: Rule
    expression: Expression
    columns: tuple[str, ...]
    head_terms: tuple


def compile_rule(rule: Rule) -> CompiledRule:
    """Compile one rule's body into a relational-algebra expression."""
    expression: Expression = Truth()
    pending_conditions: list[Condition] = []

    for index, literal in enumerate(rule.body):
        if not isinstance(literal, Atom):
            continue
        columns: list[str] = []
        for position, term in enumerate(literal.args):
            if isinstance(term, Variable):
                columns.append(term.name)
            else:
                placeholder = f"_k{index}_{position}"
                columns.append(placeholder)
                pending_conditions.append(
                    Condition(placeholder, "=", term.name, True)
                )
        base: Expression = Base(literal.predicate, tuple(columns))
        expression = (
            base if isinstance(expression, Truth) else Join(expression, base)
        )

    # Pad in variables no atom binds (head-only / constraint-only vars).
    present = set(expression_columns(expression))
    for variable in sorted(rule.variables()):
        if variable.name not in present:
            expression = Join(expression, Universe(variable.name))
            present.add(variable.name)

    # Constraints.
    for literal in rule.constraints():
        comparator = "=" if isinstance(literal, Equality) else "!="
        left, right = literal.left, literal.right
        if isinstance(left, Variable) and isinstance(right, Variable):
            pending_conditions.append(
                Condition(left.name, comparator, right.name)
            )
        elif isinstance(left, Variable):
            pending_conditions.append(
                Condition(left.name, comparator, right.name, True)
            )
        elif isinstance(right, Variable):
            pending_conditions.append(
                Condition(right.name, comparator, left.name, True)
            )
        else:
            # Constant-vs-constant: route both through a scratch column.
            scratch = f"_cc{len(pending_conditions)}"
            expression = Join(expression, Universe(scratch))
            pending_conditions.append(
                Condition(scratch, "=", left.name, True)
            )
            pending_conditions.append(
                Condition(scratch, comparator, right.name, True)
            )

    if pending_conditions:
        expression = Select(expression, tuple(pending_conditions))

    head_terms = tuple(
        term.name if isinstance(term, Variable) else term
        for term in rule.head.args
    )
    return CompiledRule(
        rule=rule,
        expression=expression,
        columns=expression_columns(expression),
        head_terms=head_terms,
    )


def compile_program(program: Program) -> tuple[CompiledRule, ...]:
    """Compile every rule of the program."""
    return tuple(compile_rule(rule) for rule in program.rules)


#: Overlay-key prefix for delta relations (cannot clash with user names).
_DELTA = "\x00delta\x00"


def _with_delta_base(
    expression: Expression, predicate: str, occurrence: int
) -> tuple[Expression, int]:
    """Rewrite the ``occurrence``-th Base over ``predicate`` to read the
    delta overlay; returns (expression, occurrences seen so far)."""
    if isinstance(expression, Base):
        if expression.relation_name == predicate:
            if occurrence == 0:
                return Base(_DELTA + predicate, expression.columns), -1
            return expression, 1
        return expression, 0
    if isinstance(expression, Join):
        left, seen_left = _with_delta_base(
            expression.left, predicate, occurrence
        )
        if seen_left == -1:
            return Join(left, expression.right), -1
        right, seen_right = _with_delta_base(
            expression.right, predicate, occurrence - seen_left
        )
        if seen_right == -1:
            return Join(left, right), -1
        return expression, seen_left + seen_right
    if isinstance(expression, Select):
        inner, seen = _with_delta_base(
            expression.source, predicate, occurrence
        )
        if seen == -1:
            return Select(inner, expression.conditions), -1
        return expression, seen
    return expression, 0


def compile_rule_deltas(
    rule: Rule, idb_predicates: frozenset[str]
) -> tuple[CompiledRule, ...]:
    """Delta variants of a rule: one per IDB body-atom occurrence.

    Variant i joins the i-th IDB occurrence against the *delta* of its
    predicate and everything else against the full relations -- the
    standard semi-naive rewriting, expressed in the algebra.
    """
    base = compile_rule(rule)
    variants: list[CompiledRule] = []
    occurrence_by_predicate: dict[str, int] = {}
    for atom in rule.body_atoms():
        if atom.predicate not in idb_predicates:
            continue
        occurrence = occurrence_by_predicate.get(atom.predicate, 0)
        occurrence_by_predicate[atom.predicate] = occurrence + 1
        rewritten, seen = _with_delta_base(
            base.expression, atom.predicate, occurrence
        )
        if seen != -1:  # pragma: no cover - occurrence must exist
            raise AssertionError("delta rewriting missed an occurrence")
        variants.append(
            CompiledRule(
                rule=rule,
                expression=rewritten,
                columns=base.columns,
                head_terms=base.head_terms,
            )
        )
    return tuple(variants)


def _head_tuples(
    compiled: CompiledRule,
    structure: Structure,
    database: Mapping[str, frozenset],
) -> set[tuple]:
    relation = evaluate_expression(
        compiled.expression, structure, database
    )
    positions = []
    for term in compiled.head_terms:
        if isinstance(term, Constant):
            positions.append(term)
        else:
            positions.append(relation.index_of(term))
    results = set()
    for row in relation.rows:
        results.add(tuple(
            structure.constants[term.name]
            if isinstance(term, Constant)
            else row[term]
            for term in positions
        ))
    return results


def _per_rule_round(
    program: Program,
    store: IndexedDatabase,
    per_rule: list[set],
) -> tuple[list[int], dict[str, set]]:
    """Per-rule firings (new distinct heads) and merged derivations.

    Uses the same semantics as the binding engines' profiles: a rule's
    firing count at a round is the number of distinct head tuples it
    derived that were not in the database at the round's start.
    """
    rule_firings = [
        len(heads - store.rows(rule.head.predicate))
        for rule, heads in zip(program.rules, per_rule)
    ]
    derived: dict[str, set] = {p: set() for p in program.idb_predicates}
    for rule, heads in zip(program.rules, per_rule):
        derived[rule.head.predicate] |= heads
    return rule_firings, derived


def _round_heads(
    compiled_rules: Iterable[CompiledRule],
    structure: Structure,
    overlay: Mapping[str, frozenset],
) -> list[set]:
    """One full-round derivation, per rule (the ``rule`` fault site)."""
    per_rule: list[set] = []
    for compiled in compiled_rules:
        _faults.faults.hit("rule")
        per_rule.append(_head_tuples(compiled, structure, overlay))
    return per_rule


def evaluate_algebra(
    program: Program,
    structure: Structure,
    extra_edb: Mapping[str, Iterable[tuple]] | None = None,
    method: str = "naive",
    collect_profile: bool = False,
    budget: ResourceBudget | None = None,
    cancellation: CancellationToken | None = None,
) -> FixpointResult:
    """Least fixpoint via iteration of the compiled algebra.

    Same contract as :func:`repro.datalog.evaluation.evaluate`, third
    implementation; ``method`` selects plain operator iteration
    (``"naive"``) or the delta-rewritten rules (``"seminaive"``).
    ``collect_profile`` populates :attr:`FixpointResult.profile`; its
    semantic parts (delta sizes, rule firings) match the binding
    engines'.

    ``budget`` / ``cancellation`` are checked at round boundaries (the
    algebra engine has no inner tick site); on exhaustion
    :class:`repro.guard.BudgetExceeded` carries the usual sound partial
    result.  Checkpoints are not emitted -- resume a bounded run under
    the semi-naive or indexed binding engine instead.
    """
    if method not in ("naive", "seminaive"):
        raise ValueError(f"unknown evaluation method {method!r}")
    database, __ = _database_from_structure(program, structure, extra_edb)
    for predicate in program.idb_predicates:
        database.setdefault(predicate, set())
    # The shared index layer bookkeeps the growing relations: merges run
    # through RelationIndex.add_all, so fresh-row detection and any
    # indexes the expression evaluator asks for stay incremental.
    store = IndexedDatabase(database)
    compiled_rules = compile_program(program)
    profile = _profile_builder(program) if collect_profile else None
    guard: EvaluationGuard | None = None
    if budget is not None or cancellation is not None:
        guard = EvaluationGuard(budget, cancellation).start()
    _metrics.metrics.inc("datalog.evaluations")

    iterations = 0
    engine = f"algebra-{method}"
    with _trace.tracer.span(
        "evaluate", engine=engine, goal=program.goal, rules=len(program.rules)
    ) as span:
        try:
            if method == "naive":
                tracer = _trace.tracer
                while True:
                    if guard is not None:
                        guard.check_boundary()
                    iterations += 1
                    if profile is not None:
                        profile.start_round()
                    with tracer.span(
                        "iteration", engine=engine, round=iterations
                    ):
                        overlay = {name: store.rows(name) for name in store}
                        # Derive a full round against the pre-round overlay
                        # before merging, so each round is one application
                        # of Theta.
                        per_rule = _round_heads(
                            compiled_rules, structure, overlay
                        )
                    rule_firings, derived_by_head = _per_rule_round(
                        program, store, per_rule
                    )
                    changed = False
                    delta_sizes: dict[str, int] = {}
                    for predicate, rows in derived_by_head.items():
                        fresh = store.merge(predicate, rows)
                        delta_sizes[predicate] = len(fresh)
                        if fresh:
                            changed = True
                    produced = sum(len(heads) for heads in per_rule)
                    _record_round(
                        engine,
                        delta_sizes,
                        rule_firings,
                        produced,
                        produced,
                        profile,
                        guard,
                    )
                    if not changed:
                        break
            else:
                iterations = _seminaive_algebra(
                    program, structure, store, compiled_rules, profile, guard
                )
            span.annotate(iterations=iterations)
        except GuardTrip as trip:
            # Trips fire at boundaries only, so the store holds exactly
            # the last completed round's state (a sound
            # under-approximation by monotonicity).
            completed = guard.rounds if guard is not None else iterations
            partial = PartialFixpointResult(
                relations={
                    p: frozenset(store.rows(p))
                    for p in program.idb_predicates
                },
                goal=program.goal,
                stages=None,
                iterations=completed,
                profile=None if profile is None else profile.build(engine),
                reason=trip.reason,
                limit=trip.limit,
                spent=dict(trip.spent),
            )
            span.annotate(interrupted=trip.reason)
            raise _budget_error(trip, partial, None) from None

    return FixpointResult(
        relations={
            p: frozenset(store.rows(p)) for p in program.idb_predicates
        },
        goal=program.goal,
        stages=None,
        iterations=iterations,
        profile=None if profile is None else profile.build(engine),
    )


def _seminaive_algebra(
    program: Program,
    structure: Structure,
    store: IndexedDatabase,
    compiled_rules: tuple[CompiledRule, ...],
    profile=None,
    guard: EvaluationGuard | None = None,
) -> int:
    """Delta-driven iteration of the compiled algebra."""
    tracer = _trace.tracer
    idb = program.idb_predicates
    delta_rules = [
        (index, compile_rule_deltas(rule, idb))
        for index, rule in enumerate(program.rules)
    ]

    # Round one: every rule against the initial (EDB-only) database.
    if guard is not None:
        guard.check_boundary()
    if profile is not None:
        profile.start_round()
    with tracer.span("iteration", engine="algebra-seminaive", round=1):
        overlay = {name: store.rows(name) for name in store}
        per_rule = _round_heads(compiled_rules, structure, overlay)
    rule_firings, derived_by_head = _per_rule_round(program, store, per_rule)
    delta = {
        predicate: store.merge(predicate, rows)
        for predicate, rows in derived_by_head.items()
    }
    produced = sum(len(heads) for heads in per_rule)
    _record_round(
        "algebra-seminaive",
        {p: len(rows) for p, rows in delta.items()},
        rule_firings,
        produced,
        produced,
        profile,
        guard,
    )
    iterations = 1

    while any(delta.values()):
        if guard is not None:
            guard.check_boundary()
        iterations += 1
        if profile is not None:
            profile.start_round()
        with tracer.span(
            "iteration", engine="algebra-seminaive", round=iterations
        ):
            overlay = {name: store.rows(name) for name in store}
            for predicate, rows in delta.items():
                overlay[_DELTA + predicate] = rows
            per_rule = [set() for __ in program.rules]
            for rule_index, variants in delta_rules:
                _faults.faults.hit("rule")
                for compiled in variants:
                    per_rule[rule_index] |= _head_tuples(
                        compiled, structure, overlay
                    )
        rule_firings, new_derived = _per_rule_round(program, store, per_rule)
        delta = {
            predicate: store.merge(predicate, rows)
            for predicate, rows in new_derived.items()
        }
        produced = sum(len(heads) for heads in per_rule)
        _record_round(
            "algebra-seminaive",
            {p: len(rows) for p, rows in delta.items()},
            rule_firings,
            produced,
            produced,
            profile,
            guard,
        )
    return iterations
