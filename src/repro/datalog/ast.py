"""Abstract syntax for Datalog(!=) programs.

Terms are variables or constants; constants refer by name to the constant
symbols of the structure the program is evaluated on (the paper's
distinguished nodes ``s_1, ..., s_l``).  Rule bodies mix relational atoms
with equalities and inequalities; negated atoms do not exist in this
language by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Union


@dataclass(frozen=True, order=True)
class Variable:
    """A rule variable, e.g. ``x`` in ``E(x, y)``."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class Constant:
    """A reference to a constant symbol of the input structure.

    Written ``$name`` in the concrete syntax, e.g. ``$s1``.
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("constant name must be non-empty")

    def __str__(self) -> str:
        return f"${self.name}"


Term = Union[Variable, Constant]


@dataclass(frozen=True)
class Atom:
    """A relational atom ``P(t_1, ..., t_n)``; ``n = 0`` is allowed.

    Nullary atoms (``P()``) are used by the generated game programs of
    Theorem 6.2, where "all pebbles removed" is a propositional fact.
    """

    predicate: str
    args: tuple[Term, ...] = ()

    def __init__(self, predicate: str, args: Iterable[Term] = ()) -> None:
        if not predicate:
            raise ValueError("predicate name must be non-empty")
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "args", tuple(args))

    @property
    def arity(self) -> int:
        """Number of argument positions."""
        return len(self.args)

    def variables(self) -> frozenset[Variable]:
        """The variables occurring in this atom."""
        return frozenset(t for t in self.args if isinstance(t, Variable))

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.args)
        return f"{self.predicate}({inner})"


@dataclass(frozen=True)
class Equality:
    """An equality ``t1 = t2`` in a rule body."""

    left: Term
    right: Term

    def variables(self) -> frozenset[Variable]:
        """The variables occurring in this equality."""
        return frozenset(
            t for t in (self.left, self.right) if isinstance(t, Variable)
        )

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class Inequality:
    """An inequality ``t1 != t2`` in a rule body -- the construct that
    separates Datalog(!=) from Datalog."""

    left: Term
    right: Term

    def variables(self) -> frozenset[Variable]:
        """The variables occurring in this inequality."""
        return frozenset(
            t for t in (self.left, self.right) if isinstance(t, Variable)
        )

    def __str__(self) -> str:
        return f"{self.left} != {self.right}"


BodyLiteral = Union[Atom, Equality, Inequality]


@dataclass(frozen=True)
class Rule:
    """A rule ``head :- body``; an empty body makes the rule a fact schema.

    Variables range over the whole universe of the input structure (the
    paper's semantics ``Theta(S) = {a : A, a |= phi(w, S)}``), so a head
    variable that never occurs in the body is legal and universally
    enumerated -- the ``Q_{1,l}`` programs of Theorem 6.1 rely on this.
    """

    head: Atom
    body: tuple[BodyLiteral, ...] = ()

    def __init__(self, head: Atom, body: Iterable[BodyLiteral] = ()) -> None:
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", tuple(body))

    def variables(self) -> frozenset[Variable]:
        """All variables of the rule (head and body)."""
        result = set(self.head.variables())
        for literal in self.body:
            result |= literal.variables()
        return frozenset(result)

    def body_atoms(self) -> tuple[Atom, ...]:
        """The relational atoms of the body, in order."""
        return tuple(lit for lit in self.body if isinstance(lit, Atom))

    def constraints(self) -> tuple[Union[Equality, Inequality], ...]:
        """The equalities and inequalities of the body, in order."""
        return tuple(
            lit for lit in self.body if not isinstance(lit, Atom)
        )

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        inner = ", ".join(str(lit) for lit in self.body)
        return f"{self.head} :- {inner}."


class Program:
    """A Datalog(!=) program: rules plus a designated goal predicate.

    The IDB predicates are those occurring in rule heads; all other
    predicates are EDBs and must be interpreted by the input structure.

    Examples
    --------
    >>> from repro.datalog.parser import parse_program
    >>> tc = parse_program('''
    ...     S(x, y) :- E(x, y).
    ...     S(x, y) :- E(x, z), S(z, y).
    ... ''', goal="S")
    >>> sorted(tc.idb_predicates)
    ['S']
    >>> sorted(tc.edb_predicates)
    ['E']
    """

    __slots__ = ("_rules", "_goal", "_arities", "_idb", "_edb")

    def __init__(self, rules: Iterable[Rule], goal: str) -> None:
        rule_tuple = tuple(rules)
        if not rule_tuple:
            raise ValueError("a program needs at least one rule")
        arities: dict[str, int] = {}
        for rule in rule_tuple:
            for atom in (rule.head, *rule.body_atoms()):
                known = arities.get(atom.predicate)
                if known is not None and known != atom.arity:
                    raise ValueError(
                        f"predicate {atom.predicate!r} used with arities "
                        f"{known} and {atom.arity}"
                    )
                arities[atom.predicate] = atom.arity
        idb = frozenset(rule.head.predicate for rule in rule_tuple)
        if goal not in idb:
            raise ValueError(
                f"goal predicate {goal!r} never occurs in a rule head"
            )
        self._rules = rule_tuple
        self._goal = goal
        self._arities = arities
        self._idb = idb
        self._edb = frozenset(arities) - idb

    @property
    def rules(self) -> tuple[Rule, ...]:
        """The program's rules, in declaration order."""
        return self._rules

    @property
    def goal(self) -> str:
        """The goal predicate's name."""
        return self._goal

    @property
    def idb_predicates(self) -> frozenset[str]:
        """Predicates defined by rules (intensional database)."""
        return self._idb

    @property
    def edb_predicates(self) -> frozenset[str]:
        """Predicates the input structure must interpret (extensional)."""
        return self._edb

    def arity(self, predicate: str) -> int:
        """Arity of ``predicate`` as used in this program."""
        return self._arities[predicate]

    def constants(self) -> frozenset[str]:
        """Names of all constants mentioned by the program."""
        names: set[str] = set()
        for rule in self._rules:
            for atom in (rule.head, *rule.body_atoms()):
                names.update(
                    t.name for t in atom.args if isinstance(t, Constant)
                )
            for constraint in rule.constraints():
                for term in (constraint.left, constraint.right):
                    if isinstance(term, Constant):
                        names.add(term.name)
        return frozenset(names)

    def is_pure_datalog(self) -> bool:
        """Whether the program is plain Datalog (no =, no !=).

        Pure Datalog programs compute *strongly monotone* queries; the
        inequality-using programs of Section 6 are deliberately not pure.
        """
        return all(not rule.constraints() for rule in self._rules)

    def rules_for(self, predicate: str) -> tuple[Rule, ...]:
        """The rules whose head predicate is ``predicate``."""
        return tuple(
            rule for rule in self._rules if rule.head.predicate == predicate
        )

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Program):
            return NotImplemented
        return self._rules == other._rules and self._goal == other._goal

    def __hash__(self) -> int:
        return hash((self._rules, self._goal))

    def __str__(self) -> str:
        lines = [str(rule) for rule in self._rules]
        lines.append(f"% goal: {self._goal}")
        return "\n".join(lines)
