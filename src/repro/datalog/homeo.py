"""Generated Datalog(!=) programs for fixed subgraph homeomorphism.

Two generators, one per positive result of the paper:

* :func:`class_c_program` (Theorem 6.1) -- for a pattern H in class C,
  a program built from the ``Q_{k,l}`` disjoint-paths family;
* :func:`acyclic_game_program` (Theorem 6.2) -- for an *arbitrary*
  pattern H, a program deciding the paper's two-player pebble game on the
  input graph, correct whenever the input is acyclic.

A note on Theorem 6.2's displayed program.  The paper presents only a
compressed two-rule example and "leaves the general case to the reader";
read literally, the two displayed rules derive D(x, y) from *either*
single-pebble advance, which is an existential interleaving and does not
model Player I's choice (a position wins only if II can answer *every*
challenge).  We therefore generate the standard game encoding: one
predicate ``W_S`` per set S of still-placed pebbles, with

    W_S(...)  :-  C_{S,e1}(...), ..., C_{S,em}(...)

conjoining one *challenge* predicate per pebble of S, each challenge
being answerable by a move rule or a removal rule.  This is plain
Datalog(!=) (negation-free, monotone) and is verified in the test suite
to coincide with the game solver and, on DAGs, with the exact
homeomorphism oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.datalog.ast import (
    Atom,
    Constant,
    Inequality,
    Program,
    Rule,
    Variable,
)
from repro.datalog.evaluation import boolean_query
from repro.datalog.library import q_predicate_name, q_rules
from repro.fhw.pattern_class import ClassCMembership, classify_pattern
from repro.graphs.digraph import DiGraph

Node = Hashable


@dataclass(frozen=True)
class GeneratedHomeoQuery:
    """A generated program together with its calling convention.

    Attributes
    ----------
    program:
        The Datalog(!=) program.
    pattern:
        The (isolated-node-free) pattern H the program decides.
    goal_argument_nodes:
        H-nodes whose images form the goal tuple, in order.
    constant_names:
        H-node -> constant-symbol name; the input structure must
        interpret these by the assigned distinguished nodes.  Empty for
        programs that take all distinguished nodes as goal arguments.
    """

    program: Program
    pattern: DiGraph
    goal_argument_nodes: tuple
    constant_names: Mapping[Node, str]

    def decide(self, graph: DiGraph, assignment: Mapping[Node, Node]) -> bool:
        """Run the program on ``(graph, assignment)``.

        ``assignment`` maps each pattern node to a distinct node of
        ``graph``; the result is the program's verdict on whether H is
        homeomorphic to the distinguished subgraph.
        """
        distinguished = {
            name: assignment[node] for node, name in self.constant_names.items()
        }
        structure = graph.with_distinguished(distinguished).to_structure()
        arguments = tuple(
            assignment[node] for node in self.goal_argument_nodes
        )
        return boolean_query(self.program, structure, arguments)


def class_c_program(pattern: DiGraph) -> GeneratedHomeoQuery:
    """Theorem 6.1: the Datalog(!=) program for a class-C pattern.

    Raises ``ValueError`` when the pattern is outside C (Theorem 6.7
    proves no such program exists there).
    """
    stripped = pattern.without_isolated_nodes()
    membership: ClassCMembership = classify_pattern(stripped)
    if not membership.in_class_c:
        raise ValueError(
            f"pattern is outside class C (obstruction {membership.obstruction}); "
            "no Datalog(!=) program exists by Theorem 6.7"
        )
    if membership.root is None:
        raise ValueError("edgeless patterns define a trivial query")

    root = membership.root
    reverse = membership.orientation == "in"
    oriented = stripped.reverse() if reverse else stripped
    neighbours = sorted(
        (v for v in oriented.successors(root) if v != root), key=repr
    )
    k = len(neighbours)

    from repro.datalog.library import rooted_star_homeomorphism_program

    program = rooted_star_homeomorphism_program(
        k, reverse=reverse, self_loop=membership.has_self_loop
    )
    return GeneratedHomeoQuery(
        program=program,
        pattern=stripped,
        goal_argument_nodes=(root, *neighbours),
        constant_names={},
    )


def acyclic_game_program(pattern: DiGraph) -> GeneratedHomeoQuery:
    """Theorem 6.2: a program deciding the two-player pebble game.

    Correct for acyclic input graphs and arbitrary patterns H.  Pebble
    ``p_e`` exists for every edge ``e = (i, j)`` of H, starts on the
    distinguished node interpreting ``i``, moves forward along edges of
    G onto unoccupied non-distinguished nodes, and is removed upon
    reaching the node interpreting ``j``.  Player II wins iff all pebbles
    get removed; ``W_S`` below is the set of II-winning positions with
    pebble set S still on the board.
    """
    stripped = pattern.without_isolated_nodes()
    if not stripped.edges:
        raise ValueError("edgeless patterns define a trivial query")
    edges = sorted(stripped.edges, key=repr)
    nodes = sorted(stripped.nodes, key=repr)
    constant_names = {node: f"h{index}" for index, node in enumerate(nodes)}

    def w_name(mask: int) -> str:
        return f"W{mask}"

    def c_name(mask: int, pebble: int) -> str:
        return f"C{mask}_{pebble}"

    rules: list[Rule] = [Rule(Atom(w_name(0)), [])]
    full_mask = (1 << len(edges)) - 1

    for mask in range(1, full_mask + 1):
        members = [i for i in range(len(edges)) if mask >> i & 1]
        xs = {i: Variable(f"x{i}") for i in members}
        head_args = tuple(xs[i] for i in members)
        rules.append(
            Rule(
                Atom(w_name(mask), head_args),
                [Atom(c_name(mask, i), head_args) for i in members],
            )
        )
        for i in members:
            __, target_node = edges[i]
            challenge_head = Atom(c_name(mask, i), head_args)
            y = Variable("y")

            # Move rule: advance pebble i to a fresh, non-distinguished y.
            move_body: list = [Atom("E", (xs[i], y))]
            move_body += [
                Inequality(y, xs[f]) for f in members if f != i
            ]
            move_body += [
                Inequality(y, Constant(constant_names[v])) for v in nodes
            ]
            successor_args = tuple(
                y if f == i else xs[f] for f in members
            )
            move_body.append(Atom(w_name(mask), successor_args))
            rules.append(Rule(challenge_head, move_body))

            # Removal rule: pebble i reaches its target and leaves.
            # Occupancy does not constrain removal moves: another pebble
            # may still be sitting on its *start* node, which can equal
            # this pebble's target (paths share endpoints).
            target = Constant(constant_names[target_node])
            removal_body: list = [Atom("E", (xs[i], target))]
            rest = tuple(xs[f] for f in members if f != i)
            removal_body.append(Atom(w_name(mask & ~(1 << i)), rest))
            rules.append(Rule(challenge_head, removal_body))

    initial = tuple(
        Constant(constant_names[tail]) for tail, __ in edges
    )
    rules.append(Rule(Atom("Answer"), [Atom(w_name(full_mask), initial)]))
    return GeneratedHomeoQuery(
        program=Program(rules, goal="Answer"),
        pattern=stripped,
        goal_argument_nodes=(),
        constant_names=constant_names,
    )


def two_disjoint_paths_acyclic_program() -> GeneratedHomeoQuery:
    """Theorem 6.2's worked example: two node-disjoint paths on DAGs.

    The instance of :func:`acyclic_game_program` for the pattern H1
    (edges s1 -> s2 and s3 -> s4): "does an acyclic G contain
    node-disjoint simple paths s1 -> t1 and s2 -> t2?".
    """
    from repro.fhw.pattern_class import pattern_h1

    return acyclic_game_program(pattern_h1())
