"""Rule plans compiled to specialized Python functions (the codegen engine).

The indexed engine executes a :class:`~repro.datalog.planner.RulePlan`
through an interpreter (``_run_plan`` in :mod:`repro.datalog.evaluation`):
a loop over op tuples that copies a binding list per extension.  On the
paper's case-study workloads -- Q_{k,l} stage programs, transitive
closure, the w-avoiding path library -- that per-op dispatch and
per-binding list copy is the dominant constant factor.  This module
removes it by *emitting the plan as Python source*: one specialized
function per plan in which

* every atom step becomes a ``for`` loop over an index bucket
  (``RelationIndex.index_for``), a full-relation scan, or -- for the
  delta occurrence -- the per-round delta set;
* constraints and ``!=`` guards become inline ``if``/``continue``
  statements at the exact nesting depth the planner scheduled them;
* bindings become plain local variables ``s0, s1, ...`` (the same
  first-bind slot numbering the interpreter's ``_compile_plan`` uses, so
  the two executors are comparable binding-for-binding).

Rendering (:func:`render_plan`) is a pure function of the plan: the
source text is deterministic -- byte-identical across runs and across
processes for the same (program, rule) -- and never embeds run-specific
values.  Everything run-specific (index buckets, constant
interpretations, the fault-injection module) enters through keyword-only
parameters whose defaults are evaluated at ``exec`` time
(:func:`bind_plan`), so the generated body reads them as fast locals and
a single code object (cached per source text in :data:`_CODE_CACHE`, so
``compile()`` runs once per distinct plan shape) serves every database.

Binding an index bucket getter once per run is sound because
:class:`~repro.datalog.indexing.RelationIndex` maintains every
materialised index *in place* as deltas merge: the dict identity is
stable for the whole fixpoint, only its buckets grow.

Instrumentation discipline (mirrors the interpreter's):

* ``faults.hit("probe")`` -- one hit per atom op per invocation, hoisted
  to the function prologue (the generated loops stay branch-free); the
  census/kill suites measure codegen's own counts, so scheduling stays
  exact;
* ``guard.tick(1)`` -- once per row of the *outermost* loop, giving the
  guard its strided mid-round deadline/cancellation pulse without
  per-binding overhead.

The functions return ``(fired, produced)``: the set of head tuples not
already in ``existing`` and the number of satisfying bindings -- exactly
what the engine loop in :mod:`repro.datalog.evaluation` needs to keep
the semantic profile view identical to the other engines.  The test-only
``mode="bindings"`` variant returns the full slot tuples instead, which
``tests/test_codegen.py`` compares against the interpreter op-by-op.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import CodeType
from typing import Callable, Hashable, Mapping

from repro.testing import faults as _faults

from repro.datalog.ast import (
    Atom,
    Constant,
    Equality,
    Program,
    Rule,
    Term,
    Variable,
)
from repro.datalog.indexing import IndexedDatabase
from repro.datalog.planner import (
    AtomStep,
    ConstraintStep,
    EnumerateStep,
    RulePlan,
    plan_program_rules,
    plan_rule,
)

Element = Hashable

#: Compiled code objects keyed by source text.  Source is a pure
#: function of the plan, so hits are exact; the cap only bounds memory
#: under adversarial corpora (the fuzz suites generate thousands of
#: distinct programs) -- a clear-and-refill on overflow keeps the
#: common case (re-evaluating the same program) a single compile.
_CODE_CACHE: dict[str, CodeType] = {}
_CODE_CACHE_LIMIT = 4096


@dataclass(frozen=True)
class PlanSource:
    """One plan rendered to source, plus what its parameters need.

    ``externals`` lists the keyword-only parameters of the generated
    function in order, each with a spec :func:`bind_plan` resolves:

    * ``("faults",)`` -- the :mod:`repro.testing.faults` module;
    * ``("const", name)`` -- the structure's interpretation of ``$name``;
    * ``("index", predicate, positions)`` -- the ``.get`` of the
      relation's index on ``positions``;
    * ``("rows", predicate)`` -- the relation's live row set.

    ``slots`` records the Variable -> local ``s<i>`` assignment, in the
    same first-bind order as the interpreter's ``_CompiledPlan.slots``.
    """

    plan: RulePlan
    name: str
    source: str
    externals: tuple[tuple[str, tuple], ...]
    slots: tuple[tuple[Variable, int], ...]
    mode: str


def render_plan(
    plan: RulePlan,
    *,
    name: str = "_codegen_plan",
    mode: str = "heads",
    analyze: bool = False,
) -> PlanSource:
    """Render one plan as deterministic Python source.

    ``mode="heads"`` (the engine's) collects new head tuples;
    ``mode="bindings"`` (the differential-test probe) collects the full
    slot tuple of every satisfying binding instead.

    ``analyze=True`` renders the EXPLAIN ANALYZE variant: the function
    takes a fifth positional parameter ``_an`` (a flat
    ``[rows_in, rows_out, ...]`` list with two slots per plan step, the
    same layout the interpreter's ``_run_plan`` fills) and counts, per
    step, the bindings that reached it and the bindings that survived
    it, flushing the counters into ``_an`` on return.  With
    ``analyze=False`` -- the default -- the emitted source is
    byte-identical to the uninstrumented plan, so the disabled path
    costs nothing and the two variants cache as distinct code objects.
    """
    if mode not in ("heads", "bindings"):
        raise ValueError(f"unknown render mode {mode!r}")
    rule = plan.rule
    slots: dict[Variable, int] = {}
    externals: dict[str, tuple] = {}
    const_params: dict[str, str] = {}
    index_params: dict[tuple[str, tuple[int, ...]], str] = {}
    scan_params: dict[str, str] = {}

    def const_param(cname: str) -> str:
        param = const_params.get(cname)
        if param is None:
            param = f"_c{len(const_params)}"
            const_params[cname] = param
            externals[param] = ("const", cname)
        return param

    def term_src(term: Term) -> str:
        if isinstance(term, Constant):
            return const_param(term.name)
        return f"s{slots[term]}"

    empty_result = "_fired, _produced" if mode == "heads" else "_out, _produced"
    body: list[str] = []
    depth = 0
    atom_ops = 0
    rows_seen = 0
    tick_emitted = False

    def emit(line: str) -> None:
        body.append("    " * (1 + depth) + line)

    def emit_tick() -> None:
        nonlocal tick_emitted
        if not tick_emitted:
            emit("if _tick is not None:")
            emit("    _tick(1)")
            tick_emitted = True

    def flush_lines() -> list[str]:
        # The analyze epilogue: add this invocation's per-step counters
        # into the caller's flat [rows_in, rows_out, ...] list.  A
        # zero-step plan (constant-only body) has nothing to flush --
        # emitting the bare `if` would be a syntax error.
        if not plan.steps:
            return []
        lines = ["if _an is not None:"]
        for k in range(len(plan.steps)):
            lines.append(f"    _an[{2 * k}] += _i{k}")
            lines.append(f"    _an[{2 * k + 1}] += _o{k}")
        return lines

    for step_index, step in enumerate(plan.steps):
        if isinstance(step, AtomStep):
            atom = step.atom
            atom_ops += 1
            row = f"_r{rows_seen}"
            rows_seen += 1
            shown = f"{atom.predicate}({', '.join(map(str, atom.args))})"
            if analyze:
                emit(f"_i{step_index} += 1")
            if step.is_delta:
                emit(f"for {row} in _delta:  # delta scan d{shown}")
            elif step.bound_positions:
                key = (atom.predicate, step.bound_positions)
                param = index_params.get(key)
                if param is None:
                    param = f"_ix{len(index_params)}"
                    index_params[key] = param
                    externals[param] = ("index",) + key
                parts = [term_src(atom.args[i]) for i in step.bound_positions]
                key_src = "(" + ", ".join(parts) + ",)" if len(parts) == 1 \
                    else "(" + ", ".join(parts) + ")"
                via = list(step.bound_positions)
                emit(f"for {row} in {param}({key_src}, _E):"
                     f"  # probe {shown} via {via}")
            else:
                param = scan_params.get(atom.predicate)
                if param is None:
                    param = f"_sc{len(scan_params)}"
                    scan_params[atom.predicate] = param
                    externals[param] = ("rows", atom.predicate)
                emit(f"for {row} in {param}:  # scan {shown}")
            depth += 1
            emit_tick()
            if step.is_delta and step.bound_positions:
                # A delta occurrence runs first, so only constants can
                # be bound on it -- filtered per row, no one-shot index.
                for position in step.bound_positions:
                    emit(f"if {row}[{position}] != "
                         f"{term_src(atom.args[position])}:")
                    emit("    continue")
            bound = set(step.bound_positions)
            for position, term in enumerate(atom.args):
                if position in bound:
                    continue
                # An unbound position is always a Variable; a slot can
                # already exist only via a repeat within this atom.
                if term in slots:
                    emit(f"if {row}[{position}] != s{slots[term]}:")
                    emit("    continue")
                else:
                    slots[term] = len(slots)
                    emit(f"s{slots[term]} = {row}[{position}]")
            if analyze:
                emit(f"_o{step_index} += 1")
        elif isinstance(step, ConstraintStep):
            literal = step.literal
            if analyze:
                emit(f"_i{step_index} += 1")
            if step.binds is not None:
                other = (
                    literal.right
                    if step.binds == literal.left
                    else literal.left
                )
                source = term_src(other)
                slots[step.binds] = len(slots)
                emit(f"s{slots[step.binds]} = {source}  # bind {literal}")
            else:
                reject = "!=" if isinstance(literal, Equality) else "=="
                cond = (
                    f"{term_src(literal.left)} {reject} "
                    f"{term_src(literal.right)}"
                )
                emit(f"if {cond}:  # filter {literal}")
                # Inside a loop a failed filter skips the row; before
                # any loop (constant-only constraints) it ends the plan.
                if depth:
                    emit("    continue")
                else:
                    if analyze:
                        for line in flush_lines():
                            emit("    " + line)
                    emit(f"    return {empty_result}")
            if analyze:
                emit(f"_o{step_index} += 1")
        else:  # EnumerateStep
            slots[step.variable] = len(slots)
            if analyze:
                emit(f"_i{step_index} += 1")
            emit(f"for s{slots[step.variable]} in _universe:"
                 f"  # enumerate {step.variable}")
            depth += 1
            emit_tick()
            if analyze:
                emit(f"_o{step_index} += 1")

    emit("_produced += 1")
    if mode == "heads":
        parts = [term_src(term) for term in rule.head.args]
        head_src = "(" + ", ".join(parts) + ",)" if len(parts) == 1 \
            else "(" + ", ".join(parts) + ")"
        emit(f"_h = {head_src}")
        emit("if _h not in _existing:")
        emit("    _fired.add(_h)")
    else:
        parts = [f"s{i}" for i in range(len(slots))]
        out_src = "(" + ", ".join(parts) + ",)" if len(parts) == 1 \
            else "(" + ", ".join(parts) + ")"
        emit(f"_out.append({out_src})")

    if atom_ops:
        externals["_flt"] = ("faults",)
    kwonly = "".join(f", {p}={p}" for p in externals)
    star = f", *{kwonly}" if externals else ""
    kind = "delta" if plan.delta_atom_index is not None else "full"
    an_param = ", _an=None" if analyze else ""
    prologue = [
        f"# {kind} plan ({mode}) for rule: {rule}",
        "# slots: " + (", ".join(
            f"s{slot}={variable}" for variable, slot in slots.items()
        ) or "(none)"),
        f"def {name}(_delta, _existing, _universe, _tick=None"
        f"{an_param}{star}):",
    ]
    if atom_ops:
        prologue.append("    _hit = _flt.faults.hit")
        prologue.extend(['    _hit("probe")'] * atom_ops)
    if index_params:
        prologue.append("    _E = ()")
    if mode == "heads":
        prologue.append("    _fired = set()")
    else:
        prologue.append("    _out = []")
    prologue.append("    _produced = 0")
    epilogue = []
    if analyze:
        prologue.extend(
            f"    _i{k} = _o{k} = 0" for k in range(len(plan.steps))
        )
        epilogue.extend("    " + line for line in flush_lines())
    source = "\n".join(
        prologue + body + epilogue + [f"    return {empty_result}", ""]
    )
    return PlanSource(
        plan=plan,
        name=name,
        source=source,
        externals=tuple(externals.items()),
        slots=tuple(slots.items()),
        mode=mode,
    )


def _compiled_code(source: str, name: str) -> CodeType:
    code = _CODE_CACHE.get(source)
    if code is None:
        if len(_CODE_CACHE) >= _CODE_CACHE_LIMIT:
            _CODE_CACHE.clear()
        code = compile(source, f"<codegen:{name}>", "exec")
        _CODE_CACHE[source] = code
    return code


def _constant_value(name: str, constants: Mapping[str, Element]) -> Element:
    try:
        return constants[name]
    except KeyError:
        raise ValueError(
            f"program mentions constant ${name} but the structure "
            "does not interpret it"
        ) from None


def bind_plan(
    plan_source: PlanSource,
    store: IndexedDatabase,
    constants: Mapping[str, Element],
) -> Callable:
    """Materialise one rendered plan against a store.

    Resolves every external (index ``.get``, live row set, constant
    value, faults module) and ``exec``s the cached code object with them
    as the def-time defaults of the keyword-only parameters.  The
    returned callable is ``fn(delta_rows, existing, universe, tick)``.
    """
    namespace: dict[str, object] = {}
    for param, spec in plan_source.externals:
        kind = spec[0]
        if kind == "index":
            namespace[param] = store.relation(spec[1]).index_for(spec[2]).get
        elif kind == "rows":
            namespace[param] = store.relation(spec[1]).rows
        elif kind == "const":
            namespace[param] = _constant_value(spec[1], constants)
        else:  # "faults"
            namespace[param] = _faults
    exec(_compiled_code(plan_source.source, plan_source.name), namespace)
    return namespace[plan_source.name]  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Program-level entry points (what the engine and EXPLAIN consume).
# ---------------------------------------------------------------------------


def _full_name(rule_index: int) -> str:
    return f"_codegen_r{rule_index}_full"


def _delta_name(rule_index: int, atom_index: int) -> str:
    return f"_codegen_r{rule_index}_d{atom_index}"


def rule_sources(
    program: Program,
) -> list[tuple[PlanSource, tuple[tuple[str, PlanSource], ...]]]:
    """Per rule: the full plan's source and every delta plan's, rendered.

    Each delta entry carries the delta occurrence's predicate (what the
    engine keys the per-round delta sets by).  Pure rendering -- no
    store, no constants -- so EXPLAIN can show exactly what a run would
    execute without evaluating anything.
    """
    idb = program.idb_predicates
    sources = []
    for rule_index, rule in enumerate(program.rules):
        full = render_plan(plan_rule(rule), name=_full_name(rule_index))
        deltas = []
        for plan in plan_program_rules(rule, idb):
            atom_index = plan.delta_atom_index
            predicate = rule.body_atoms()[atom_index].predicate
            deltas.append((
                predicate,
                render_plan(plan, name=_delta_name(rule_index, atom_index)),
            ))
        sources.append((full, tuple(deltas)))
    return sources


def bind_full_functions(
    program: Program,
    store: IndexedDatabase,
    constants: Mapping[str, Element],
    *,
    analyze: bool = False,
) -> list[Callable]:
    """One bound round-1 function per rule, in rule order."""
    return [
        bind_plan(
            render_plan(
                plan_rule(rule), name=_full_name(rule_index), analyze=analyze
            ),
            store,
            constants,
        )
        for rule_index, rule in enumerate(program.rules)
    ]


def bind_delta_functions(
    program: Program,
    store: IndexedDatabase,
    constants: Mapping[str, Element],
    *,
    analyze: bool = False,
) -> list[tuple[tuple[str, Callable], ...]]:
    """Per rule: ``(delta predicate, bound function)`` per occurrence.

    EDB-only rules get an empty tuple (nothing to re-derive after
    round 1), matching :func:`~repro.datalog.planner.plan_program_rules`.
    """
    idb = program.idb_predicates
    compiled = []
    for rule_index, rule in enumerate(program.rules):
        bound = []
        for plan in plan_program_rules(rule, idb):
            atom_index = plan.delta_atom_index
            source = render_plan(
                plan,
                name=_delta_name(rule_index, atom_index),
                analyze=analyze,
            )
            bound.append((
                rule.body_atoms()[atom_index].predicate,
                bind_plan(source, store, constants),
            ))
        compiled.append(tuple(bound))
    return compiled
